//! Checkpointed-replay speed harness (DESIGN.md, "Performance
//! architecture").
//!
//! Times statistical fault-injection campaigns over a corpus of
//! generated programs with the golden checkpoint trail disabled
//! (`checkpoint_interval = 0`, the pre-PR replay behaviour: every
//! replay starts at instruction 0 and runs to the end) and enabled (the
//! default interval: replays seek to the fault's first corruption point
//! and early-exit on reconvergence). Outcome tallies are asserted
//! bit-identical between the two configurations on every run, so the
//! timed comparison is also a live equivalence check.
//!
//! The reference workload is the **bit-array suite** (IRF, XRF, L1D):
//! those replays run at native functional speed, so their cost is
//! dominated by golden-prefix re-execution — exactly what the trail
//! removes. Gate-fault campaigns are timed and reported separately
//! (`gate_campaign_*`) against a deeper baseline: the full leg runs the
//! pre-compilation pipeline (`gate_legacy`: interpreted per-gate netlist
//! dispatch, no fault specialization, no output memo, no cohort
//! demotion) with the trail off, while the checkpointed leg runs the
//! default engine — compiled fault-specialized circuits, operand memos,
//! cohort demotion and the trail together. `gate_campaign_speedup_t*`
//! is therefore the end-to-end gate-suite win of the compiled
//! evaluation stack; see the cost model in DESIGN.md.
//!
//! Writes `BENCH_campaign.json` with the wall-clock nanoseconds and
//! speedup at 1/4/8 campaign threads plus the replay-instruction
//! reduction (skipped / (executed + skipped)) of the checkpointed
//! configuration, and a `campaign_speed.manifest.json` run manifest
//! like every other figure binary.
//!
//! The bit-array suite is additionally timed with fault forensics
//! enabled (`CampaignConfig::forensics`): `campaign_forensics_t*_ns` is
//! the instrumented cost and `campaign_forensics_off_speedup_t*` the
//! ratio of instrumented to default time — the price of the autopsy
//! recorder. Both sides of that ratio are paired interleaved minima
//! (see [`paired_min_ns`]); CI's bench job gates the single-thread key
//! at 5% so the default (forensics-off) path stays free.
//!
//! The schema-v4 live-telemetry monitor gets the same treatment: the
//! bit-array suite is timed through the streaming entry point with a
//! journal sink on a 10 ms cadence versus the default path
//! (`campaign_streaming_t1_ns`, `campaign_streaming_off_speedup_t1`),
//! and CI gates the on/off ratio at 2% so the streaming-off hot path
//! stays allocation-free.
//!
//! The schema-v6 profiling layer too: `CampaignConfig::profile` turns
//! on per-replay wall-clock attribution and `cost` record emission, and
//! `campaign_profile_off_speedup_t1` (also gated at 2% in CI) keeps
//! that cost out of the default path — with the side assertion that the
//! cost matrix accounts every replayed instruction.
//!
//! Every timed key additionally carries a `<key>_cov` companion: the
//! coefficient of variation (stddev / mean) of that side's
//! per-iteration wall times, with speedup keys taking the worse of
//! their two sides. `bench_diff` reads these to flag a gated ratio
//! whose underlying timings were too noisy (CoV > 10%) to trust.

use harpo_bench::{Cli, Harness};
use harpo_coverage::TargetStructure;
use harpo_faultsim::{
    build_campaign_trail, measure_detection_streamed, measure_detection_with_trail, CampaignConfig,
    CampaignResult, StreamSettings,
};
use harpo_isa::program::Program;
use harpo_isa::state::Signature;
use harpo_museqgen::{GenConstraints, Generator};
use harpo_telemetry::{JsonlSink, Telemetry, Value};
use harpo_uarch::{ExecutionTrace, OooCore};
use std::sync::Arc;
use std::time::Instant;

const BIT_ARRAYS: [TargetStructure; 3] = [
    TargetStructure::Irf,
    TargetStructure::Xrf,
    TargetStructure::L1d,
];
const GATES: [TargetStructure; 1] = [TargetStructure::IntAdder];

/// One program with its golden run, simulated once up front so the
/// timed region contains only campaign work (plus trail recording for
/// the checkpointed configuration, which is part of its honest cost).
struct Workload {
    prog: Program,
    golden: Signature,
    trace: ExecutionTrace,
}

/// Runs the given structure campaigns for every workload program and
/// merges the tallies. `interval == 0` is the full-replay baseline.
fn run_campaigns(
    workloads: &[Workload],
    structures: &[TargetStructure],
    core: &OooCore,
    ccfg: &CampaignConfig,
) -> CampaignResult {
    let mut total = CampaignResult::default();
    for w in workloads {
        let trail = build_campaign_trail(&w.prog, ccfg);
        for &structure in structures {
            total.merge(&measure_detection_with_trail(
                &w.prog,
                structure,
                core,
                ccfg,
                &w.golden,
                &w.trace,
                trail.as_ref(),
            ));
        }
    }
    total
}

/// Like [`run_campaigns`], but through the live-telemetry entry point
/// with the given journal sink — the streaming-on side of the gated
/// streaming on/off ratio.
fn run_campaigns_streamed(
    workloads: &[Workload],
    structures: &[TargetStructure],
    core: &OooCore,
    ccfg: &CampaignConfig,
    telemetry: &Telemetry,
) -> CampaignResult {
    let mut total = CampaignResult::default();
    for w in workloads {
        let trail = build_campaign_trail(&w.prog, ccfg);
        for &structure in structures {
            total.merge(
                &measure_detection_streamed(
                    &w.prog,
                    structure,
                    core,
                    ccfg,
                    &w.golden,
                    &w.trace,
                    trail.as_ref(),
                    telemetry,
                )
                .0,
            );
        }
    }
    total
}

/// One timed side of a [`paired_min_ns`] comparison: the minimum wall
/// time, the last run's tallies, and the coefficient of variation of
/// the per-iteration samples. The CoV rides into `BENCH_*.json` as a
/// `<key>_cov` companion so `bench_diff` can flag a gated ratio whose
/// underlying timings were too noisy to trust.
struct TimedSide {
    ns: u64,
    result: CampaignResult,
    cov: f64,
}

/// Coefficient of variation (population stddev / mean) of wall-time
/// samples; 0.0 when there are fewer than two samples.
fn cov(samples: &[u64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = samples
        .iter()
        .map(|&s| (s as f64 - mean).powi(2))
        .sum::<f64>()
        / samples.len() as f64;
    var.sqrt() / mean
}

/// Paired minimum wall nanoseconds of `reps` interleaved runs of `a`
/// and `b` — the noise-robust estimator used for the gated forensics
/// on/off ratio. Alternating the two configurations within one loop
/// samples both under the same load epoch, and taking each side's
/// minimum discards interference outliers; timing the sides in separate
/// blocks would let a load spike during one block swamp a 5% threshold.
/// Each side also keeps its per-iteration samples to report a
/// coefficient of variation alongside the minimum.
fn paired_min_ns(
    reps: usize,
    mut a: impl FnMut() -> CampaignResult,
    mut b: impl FnMut() -> CampaignResult,
) -> (TimedSide, TimedSide) {
    let mut samples_a = Vec::with_capacity(reps);
    let mut samples_b = Vec::with_capacity(reps);
    let mut last_a = CampaignResult::default();
    let mut last_b = CampaignResult::default();
    for _ in 0..reps {
        let t = Instant::now();
        last_a = a();
        samples_a.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        last_b = b();
        samples_b.push(t.elapsed().as_nanos() as u64);
    }
    (
        TimedSide {
            ns: samples_a.iter().copied().min().unwrap_or(u64::MAX),
            result: last_a,
            cov: cov(&samples_a),
        },
        TimedSide {
            ns: samples_b.iter().copied().min().unwrap_or(u64::MAX),
            result: last_b,
            cov: cov(&samples_b),
        },
    )
}

/// Strips perf counters so tallies can be compared across
/// configurations.
fn outcome_tallies(r: &CampaignResult) -> (u64, u64, u64, u64, u64, u64) {
    (
        r.injected,
        r.sdc,
        r.crash,
        r.masked,
        r.corrected,
        r.masked_fast_path,
    )
}

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("campaign_speed", &cli);
    let core = OooCore::default();

    // Reference workload: long-ish generated programs (the regime the
    // trail is built for — fleet tests run thousands of instructions,
    // and a fault's corruption window is a tiny slice of that).
    let gen = Generator::new(GenConstraints {
        n_insts: 3_000,
        allow_sse: true,
        store_bias: 0.25,
        ..GenConstraints::default()
    });
    let workloads: Vec<Workload> = (0..4u64)
        .map(|s| {
            let prog = gen.generate(0xCA3 + s);
            let sim = core.simulate(&prog, 50_000_000).expect("golden run");
            Workload {
                prog,
                golden: sim.output.signature,
                trace: sim.trace,
            }
        })
        .collect();

    let ccfg_of = |threads: usize, interval: u64| CampaignConfig {
        n_faults: cli.faults,
        threads,
        checkpoint_interval: interval,
        ..cli.campaign()
    };
    let forensic_ccfg_of = |threads: usize, interval: u64| CampaignConfig {
        forensics: true,
        ..ccfg_of(threads, interval)
    };
    let default_interval = CampaignConfig::default().checkpoint_interval;

    let mut results: Vec<(String, Value)> = Vec::new();
    let mut ck_tally = CampaignResult::default();
    println!(
        "{:<10} {:>8} {:>15} {:>15} {:>9}",
        "suite", "threads", "full (ns)", "checkpoint (ns)", "speedup"
    );
    for threads in [1usize, 4, 8] {
        let mut suite_ns = Vec::new();
        for (suite, structures) in [("bit_array", &BIT_ARRAYS[..]), ("gate", &GATES[..])] {
            // The gate suite's full leg is the pre-compilation engine:
            // interpreted replays, no specialization, no cohorts. The
            // cross-leg tally assertion below doubles as a live
            // legacy-vs-compiled differential check.
            let full_ccfg = if suite == "gate" {
                CampaignConfig {
                    gate_legacy: true,
                    ..ccfg_of(threads, 0)
                }
            } else {
                ccfg_of(threads, 0)
            };
            // Paired interleaved minima, like the forensics ratio
            // below: the two legs differ 3-5x in wall time, so a load
            // spike landing inside one median-of-3 block would swing
            // the gated speedup by far more than CI's threshold.
            let (full, ck) = paired_min_ns(
                3,
                || run_campaigns(&workloads, structures, &core, &full_ccfg),
                || {
                    run_campaigns(
                        &workloads,
                        structures,
                        &core,
                        &ccfg_of(threads, default_interval),
                    )
                },
            );
            let (full_ns, ck_ns) = (full.ns, ck.ns);
            let ck_r = ck.result;
            assert_eq!(
                outcome_tallies(&full.result),
                outcome_tallies(&ck_r),
                "the {suite} fast leg changed campaign outcomes at {threads} threads"
            );
            let speedup = full_ns as f64 / ck_ns.max(1) as f64;
            println!("{suite:<10} {threads:>8} {full_ns:>15} {ck_ns:>15} {speedup:>8.2}x");
            let key = if suite == "gate" {
                "gate_campaign"
            } else {
                "campaign"
            };
            results.push((format!("{key}_full_t{threads}_ns"), full_ns.into()));
            results.push((format!("{key}_full_t{threads}_ns_cov"), full.cov.into()));
            results.push((format!("{key}_checkpointed_t{threads}_ns"), ck_ns.into()));
            results.push((
                format!("{key}_checkpointed_t{threads}_ns_cov"),
                ck.cov.into(),
            ));
            results.push((format!("{key}_speedup_t{threads}"), speedup.into()));
            results.push((
                format!("{key}_speedup_t{threads}_cov"),
                full.cov.max(ck.cov).into(),
            ));
            suite_ns.push((full_ns, ck_ns));
            if threads == 8 {
                ck_tally.merge(&ck_r);
            }
            // Forensics cost on the reference suite: same campaign with
            // the autopsy recorder on. The off/on ratio is the gated
            // quantity — the default path must stay free of forensic
            // bookkeeping, so `on / off` staying near its baseline means
            // the off path did not silently absorb the recorder's cost.
            if suite == "bit_array" {
                let (fo, off) = paired_min_ns(
                    9,
                    || {
                        run_campaigns(
                            &workloads,
                            structures,
                            &core,
                            &forensic_ccfg_of(threads, default_interval),
                        )
                    },
                    || {
                        run_campaigns(
                            &workloads,
                            structures,
                            &core,
                            &ccfg_of(threads, default_interval),
                        )
                    },
                );
                let (fo_ns, off_ns) = (fo.ns, off.ns);
                assert_eq!(
                    outcome_tallies(&ck_r),
                    outcome_tallies(&fo.result),
                    "forensics changed campaign outcomes at {threads} threads"
                );
                let off_speedup = fo_ns as f64 / off_ns.max(1) as f64;
                println!(
                    "forensics   {threads:>8} {fo_ns:>15} {off_ns:>15} {off_speedup:>8.2}x (on/off)"
                );
                results.push((format!("campaign_forensics_t{threads}_ns"), fo_ns.into()));
                results.push((
                    format!("campaign_forensics_t{threads}_ns_cov"),
                    fo.cov.into(),
                ));
                results.push((
                    format!("campaign_forensics_off_speedup_t{threads}"),
                    off_speedup.into(),
                ));
                results.push((
                    format!("campaign_forensics_off_speedup_t{threads}_cov"),
                    fo.cov.max(off.cov).into(),
                ));
            }
            // Streaming cost on the reference suite, single-thread only
            // (the scheduler-noise-free configuration): the same
            // campaign through the live-telemetry entry point with a
            // journal sink on a 10 ms cadence, versus the default
            // (streaming-off) path. `on / off` staying near its
            // baseline means the off hot path stayed allocation-free —
            // it did not silently absorb monitor bookkeeping.
            if suite == "bit_array" && threads == 1 {
                let journal = std::env::temp_dir()
                    .join(format!("harpo-bench-stream-{}.jsonl", std::process::id()));
                let stream_ccfg = CampaignConfig {
                    stream: StreamSettings {
                        cadence_ms: 10,
                        ..StreamSettings::default()
                    },
                    ..ccfg_of(threads, default_interval)
                };
                let (on, off) = paired_min_ns(
                    9,
                    || {
                        let sink = JsonlSink::create(&journal).expect("stream journal");
                        run_campaigns_streamed(
                            &workloads,
                            structures,
                            &core,
                            &stream_ccfg,
                            &Telemetry::to(Arc::new(sink)),
                        )
                    },
                    || {
                        run_campaigns(
                            &workloads,
                            structures,
                            &core,
                            &ccfg_of(threads, default_interval),
                        )
                    },
                );
                std::fs::remove_file(&journal).ok();
                let (on_ns, off_ns) = (on.ns, off.ns);
                assert_eq!(
                    outcome_tallies(&ck_r),
                    outcome_tallies(&on.result),
                    "streaming changed campaign outcomes at {threads} threads"
                );
                let off_speedup = on_ns as f64 / off_ns.max(1) as f64;
                println!(
                    "streaming   {threads:>8} {on_ns:>15} {off_ns:>15} {off_speedup:>8.2}x (on/off)"
                );
                results.push((format!("campaign_streaming_t{threads}_ns"), on_ns.into()));
                results.push((
                    format!("campaign_streaming_t{threads}_ns_cov"),
                    on.cov.into(),
                ));
                results.push((
                    format!("campaign_streaming_off_speedup_t{threads}"),
                    off_speedup.into(),
                ));
                results.push((
                    format!("campaign_streaming_off_speedup_t{threads}_cov"),
                    on.cov.max(off.cov).into(),
                ));
            }
            // Profiling cost on the reference suite, single-thread only:
            // the same campaign with `CampaignConfig::profile` on —
            // per-replay wall-clock attribution plus `cost` record
            // emission through a journal sink — versus the default
            // (profiling-off) path. The fault and replay-instruction
            // halves of the cost matrix are free integer adds and stay
            // on unconditionally; the clock reads and record rendering
            // must only be paid when asked for, so CI gates `on / off`
            // at 2% to keep the off hot path allocation-free.
            if suite == "bit_array" && threads == 1 {
                let journal = std::env::temp_dir()
                    .join(format!("harpo-bench-profile-{}.jsonl", std::process::id()));
                let profile_ccfg = CampaignConfig {
                    profile: true,
                    ..ccfg_of(threads, default_interval)
                };
                let (on, off) = paired_min_ns(
                    9,
                    || {
                        let sink = JsonlSink::create(&journal).expect("profile journal");
                        run_campaigns_streamed(
                            &workloads,
                            structures,
                            &core,
                            &profile_ccfg,
                            &Telemetry::to(Arc::new(sink)),
                        )
                    },
                    || {
                        run_campaigns(
                            &workloads,
                            structures,
                            &core,
                            &ccfg_of(threads, default_interval),
                        )
                    },
                );
                std::fs::remove_file(&journal).ok();
                let (on_ns, off_ns) = (on.ns, off.ns);
                assert_eq!(
                    outcome_tallies(&ck_r),
                    outcome_tallies(&on.result),
                    "profiling changed campaign outcomes at {threads} threads"
                );
                assert_eq!(
                    on.result.cost.total_replay_insts(),
                    on.result.replay_insts,
                    "the cost matrix lost replay instructions at {threads} threads"
                );
                let off_speedup = on_ns as f64 / off_ns.max(1) as f64;
                println!(
                    "profile     {threads:>8} {on_ns:>15} {off_ns:>15} {off_speedup:>8.2}x (on/off)"
                );
                results.push((format!("campaign_profile_t{threads}_ns"), on_ns.into()));
                results.push((format!("campaign_profile_t{threads}_ns_cov"), on.cov.into()));
                results.push((
                    format!("campaign_profile_off_speedup_t{threads}"),
                    off_speedup.into(),
                ));
                results.push((
                    format!("campaign_profile_off_speedup_t{threads}_cov"),
                    on.cov.max(off.cov).into(),
                ));
            }
        }
        let full: u64 = suite_ns.iter().map(|(f, _)| f).sum();
        let ck: u64 = suite_ns.iter().map(|(_, c)| c).sum();
        results.push((
            format!("overall_speedup_t{threads}"),
            (full as f64 / ck.max(1) as f64).into(),
        ));
    }

    // Replay-instruction accounting of the checkpointed configuration:
    // executed is what was actually replayed, skipped is the golden
    // prefix seeks plus reconverged suffixes the trail saved.
    let executed = ck_tally.replay_insts;
    let skipped = ck_tally.replay_insts_skipped;
    let reduction = skipped as f64 / (executed + skipped).max(1) as f64;
    println!(
        "replay instructions: {executed} executed, {skipped} skipped \
         ({:.1}% reduction; {} checkpoint seeks, {} early exits over {} replays)",
        reduction * 100.0,
        ck_tally.checkpoint_hits,
        ck_tally.early_exits,
        ck_tally.replays
    );
    results.push(("replay_insts_executed".to_string(), executed.into()));
    results.push(("replay_insts_skipped".to_string(), skipped.into()));
    results.push(("replay_inst_reduction".to_string(), reduction.into()));
    results.push((
        "checkpoint_hits".to_string(),
        ck_tally.checkpoint_hits.into(),
    ));
    results.push(("early_exits".to_string(), ck_tally.early_exits.into()));
    ck_tally.publish(harness.metrics());

    std::fs::create_dir_all(&cli.out_dir).expect("create results dir");
    let path = cli.out_dir.join("BENCH_campaign.json");
    let mut json = Value::Obj(results).to_json();
    json.push('\n');
    std::fs::write(&path, json).expect("write BENCH_campaign.json");
    println!("↳ wrote {}", path.display());
    harness.finish();
}
