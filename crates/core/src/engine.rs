//! The Harpocrates program-generation loop (paper §IV, §V-C, Fig. 7).
//!
//! A (μ+λ) evolutionary loop over test programs:
//!
//! * **Step 0** — the Generator bootstraps an initial random population;
//! * **Step 1** — the Evaluator grades every program on the
//!   microarchitectural model (fitness = hardware coverage of the target
//!   structure);
//! * **Step 2** — selection keeps the top-K programs (parents compete
//!   with offspring, so peak coverage is retained across iterations, as
//!   in the paper's Fig. 10 curves);
//! * **Step 3** — the Mutator produces K×M offspring by replace-all
//!   instruction replacement.
//!
//! Every stage is timed, reproducing the paper's Table I loop-step
//! breakdown (mutation / generation / compilation / evaluation). Stage
//! timing uses [`Span`] RAII timers feeding both the [`LoopTiming`]
//! report and the shared metrics registry; when a [`Telemetry`] journal
//! is attached the loop additionally emits one `iteration` record per
//! round and a final `summary` record. Telemetry never perturbs the
//! search itself: a journalled run produces a bit-identical champion.

use crate::evaluator::{Evaluator, RoundStats};
use crate::memo::fingerprint;
use harpo_isa::program::Program;
use harpo_museqgen::{Generator, MutationOp, Mutator};
use harpo_telemetry::{
    rss_bytes, Counter, EwmaRate, Metrics, Profiler, Record, Span, Telemetry, Value,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// Loop parameters (paper §VI-B per-structure values live in
/// [`crate::presets`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopConfig {
    /// Offspring population per iteration (the paper's 96 / 32).
    pub population: usize,
    /// Survivors per iteration (the paper's 16 / 8).
    pub top_k: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// Record a sample every this many iterations.
    pub sample_every: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Threads for population evaluation (0 = all cores).
    pub threads: usize,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            population: 32,
            top_k: 8,
            iterations: 50,
            sample_every: 5,
            seed: 0xA1C0,
            threads: 0,
        }
    }
}

impl LoopConfig {
    /// Offspring each survivor contributes per iteration.
    pub fn offspring_per_parent(&self) -> usize {
        self.population.div_ceil(self.top_k)
    }
}

/// Wall-clock breakdown of the loop stages (Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopTiming {
    /// Time mutating sequences.
    pub mutation: Duration,
    /// Time materialising programs (wrapper/initial-state work).
    pub generation: Duration,
    /// Time lowering programs to machine code bytes.
    pub compilation: Duration,
    /// Time in microarchitectural evaluation.
    pub evaluation: Duration,
    /// Whole-loop wall time.
    pub total: Duration,
    /// Iterations executed.
    pub iterations: usize,
    /// Programs evaluated in total.
    pub programs_evaluated: u64,
    /// Instructions generated+evaluated in total.
    pub instructions_processed: u64,
}

impl LoopTiming {
    /// Runnable-and-evaluated instructions per second — the §VI-A
    /// generation-rate metric.
    pub fn instructions_per_second(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.instructions_processed as f64 / secs
        }
    }
}

/// Per-operator lineage totals over a whole run: how much realized
/// coverage gain each mutation operator contributed. The engine journals
/// this as the `operator_efficacy` record and returns it in
/// [`RunReport::efficacy`] — the signal a later adaptive-scheduling PR
/// will feed on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorEfficacy {
    /// Operator label (see [`MutationOp::label`]).
    pub operator: String,
    /// Offspring this operator produced (and the loop evaluated).
    pub offspring: u64,
    /// Offspring that made it into the survivor set of their round.
    pub survivors: u64,
    /// Realized coverage gain: the sum of positive coverage deltas
    /// (child − parent) over this operator's *surviving* offspring —
    /// improvement actually banked into the population, not just
    /// proposed.
    pub realized_gain: f64,
    /// Mean coverage delta (child − parent) over all offspring.
    pub mean_delta: f64,
    /// Best single coverage delta over all offspring.
    pub max_delta: f64,
}

/// Per-round, per-operator accumulation backing lineage records.
#[derive(Debug, Clone, Copy, Default)]
struct OpRound {
    offspring: u64,
    survivors: u64,
    delta_sum: f64,
    delta_max: f64,
    realized_gain: f64,
}

/// One recorded sample of the optimisation.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Iteration index (0 = initial population).
    pub iteration: usize,
    /// Coverages of the current top-K, best first.
    pub top_coverages: Vec<f64>,
    /// The champion program at this point.
    pub champion: Program,
}

/// Result of a full Harpocrates run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Periodic samples (always includes iteration 0 and the last).
    pub samples: Vec<Sample>,
    /// The best program found.
    pub champion: Program,
    /// Its coverage.
    pub champion_coverage: f64,
    /// Stage timing.
    pub timing: LoopTiming,
    /// Per-operator lineage totals, best realized gain first.
    pub efficacy: Vec<OperatorEfficacy>,
}

/// The Harpocrates system: Generator + Mutator + Evaluator.
#[derive(Debug)]
pub struct Harpocrates {
    generator: Generator,
    mutator: Mutator,
    evaluator: Evaluator,
    cfg: LoopConfig,
    telemetry: Telemetry,
    operators: Vec<MutationOp>,
    memo_enabled: bool,
    stream_every: usize,
    profiler: Option<Profiler>,
}

impl Harpocrates {
    /// Assembles the loop from its three components (journal off; see
    /// [`Harpocrates::with_telemetry`]). The default operator set is the
    /// paper's production strategy, replace-all, alone; the evaluation
    /// memo cache is on.
    pub fn new(generator: Generator, evaluator: Evaluator, cfg: LoopConfig) -> Harpocrates {
        assert!(cfg.top_k >= 1 && cfg.population >= cfg.top_k);
        let mutator = Mutator::new(generator.clone());
        Harpocrates {
            generator,
            mutator,
            evaluator,
            cfg,
            telemetry: Telemetry::off(),
            operators: vec![MutationOp::ReplaceAll],
            memo_enabled: true,
            stream_every: 0,
            profiler: None,
        }
    }

    /// Attaches a journal: the loop emits an `iteration` record per
    /// round and a `summary` record at the end.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Harpocrates {
        self.telemetry = telemetry;
        self.rewire_stream();
        self
    }

    /// Enables live streaming telemetry (schema v4): every `every`
    /// rounds the loop journals a `progress` record (rounds done/total,
    /// EWMA ETA) and a `resource` record (memo-cache hit-rate delta,
    /// work-stealing delta, RSS), and the evaluator's workers emit
    /// per-batch `heartbeat` records. `0` (the default) disables
    /// streaming; the search trajectory is bit-identical either way.
    /// Composes with [`Harpocrates::with_telemetry`] in either order.
    pub fn with_streaming(mut self, every: usize) -> Harpocrates {
        self.stream_every = every;
        self.rewire_stream();
        self
    }

    /// Points the evaluator's heartbeat stream at the journal when
    /// streaming is on (and detaches it when off), so the builder calls
    /// compose in any order.
    fn rewire_stream(&mut self) {
        let stream = if self.stream_every > 0 {
            self.telemetry.clone()
        } else {
            Telemetry::off()
        };
        self.evaluator = self.evaluator.clone().with_stream(stream);
    }

    /// Replaces the mutation-operator set. Offspring slots cycle through
    /// the operators deterministically, so the lineage records can
    /// compare them on equal footing.
    ///
    /// # Panics
    /// Panics on an empty set.
    pub fn with_operators(mut self, operators: Vec<MutationOp>) -> Harpocrates {
        assert!(!operators.is_empty(), "need at least one mutation operator");
        self.operators = operators;
        self
    }

    /// Enables or disables the evaluation memo cache (on by default).
    /// The search trajectory is identical either way — the cache only
    /// skips re-simulating programs already scored — which the lineage
    /// regression tests assert.
    pub fn with_memo(mut self, enabled: bool) -> Harpocrates {
        self.memo_enabled = enabled;
        self
    }

    /// Attaches a [`Profiler`] (schema v6): the loop wraps each stage in
    /// a profiler span under a `refine` root, so the journal gains
    /// per-thread `profile` records with self-time accounting — one
    /// interim record per streaming tick (when streaming is on, so
    /// `harpo watch` can show the hottest span live) and a final record
    /// before the summary. Profiling is strictly observational: the
    /// search trajectory and canonical journal are bit-identical with it
    /// on or off, and with no profiler attached the loop pays nothing.
    pub fn with_profiler(mut self, profiler: Profiler) -> Harpocrates {
        self.profiler = Some(profiler);
        self
    }

    /// Rebinds the whole pipeline to a shared metrics registry (the
    /// evaluator reports its counters there too).
    pub fn with_metrics(mut self, metrics: Metrics) -> Harpocrates {
        self.evaluator = self.evaluator.with_metrics(metrics);
        self
    }

    /// The loop configuration.
    pub fn config(&self) -> &LoopConfig {
        &self.cfg
    }

    /// The evaluator (exposed so benches can grade champions with SFI).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The metrics registry this run reports into.
    pub fn metrics(&self) -> &Metrics {
        self.evaluator.metrics()
    }

    /// Grades a population through the run-local memo cache: programs
    /// whose semantic fingerprint has already been scored replay the
    /// cached value; only the remainder is simulated. Evaluation is
    /// deterministic, so a replayed score is bit-identical to a fresh
    /// one and the search trajectory is unchanged.
    fn score_population(
        &self,
        population: &[Program],
        memo: &mut HashMap<u128, f64>,
        hits: &Counter,
        misses: &Counter,
    ) -> Vec<f64> {
        let keys: Vec<u128> = population.iter().map(fingerprint).collect();
        let mut scores = vec![0.0f64; population.len()];
        let mut miss_idx: Vec<usize> = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            match memo.get(k) {
                Some(&s) => {
                    scores[i] = s;
                    hits.inc();
                }
                None => {
                    miss_idx.push(i);
                    misses.inc();
                }
            }
        }
        let miss_refs: Vec<&Program> = miss_idx.iter().map(|&i| &population[i]).collect();
        let fresh = self
            .evaluator
            .evaluate_population_refs(&miss_refs, self.cfg.threads);
        for (&i, s) in miss_idx.iter().zip(fresh) {
            scores[i] = s;
            // Intra-round duplicates are both simulated (they were both
            // misses at lookup time) and land on the same key with the
            // same deterministic score — harmless.
            memo.insert(keys[i], s);
        }
        scores
    }

    /// Runs the complete refinement loop.
    pub fn run(&self) -> RunReport {
        let metrics = self.evaluator.metrics();
        let iter_counter = metrics.counter("engine.iterations");
        let cache_hits = metrics.counter("engine.cache.hits");
        let cache_misses = metrics.counter("engine.cache.misses");
        let h_generation = metrics.histogram("engine.stage.generation_ns");
        let h_compilation = metrics.histogram("engine.stage.compilation_ns");
        let h_mutation = metrics.histogram("engine.stage.mutation_ns");
        let h_evaluation = metrics.histogram("engine.stage.evaluation_ns");

        let t_total = Instant::now();
        let mut timing = LoopTiming::default();
        let n_insts = self.generator.constraints().n_insts as u64;

        // Self-time profiling (schema v6): stage spans nest under one
        // `refine` root so each stage's self-time is its wall time and
        // the root's self-time is the loop's own bookkeeping overhead.
        let prof = self.profiler.as_ref();
        let root_span = prof.map(|p| p.span("refine"));

        // Step 0: initial population.
        let mut population: Vec<Program> = {
            let _p = prof.map(|p| p.span("generation"));
            let _s = Span::enter(&mut timing.generation).with_histogram(h_generation);
            (0..self.cfg.population)
                .map(|i| {
                    self.generator
                        .generate(self.cfg.seed.wrapping_add(i as u64))
                })
                .collect()
        };

        // "Compilation": lower to machine code (the artefact a real
        // deployment would ship; the simulator consumes the IR directly).
        {
            let _p = prof.map(|p| p.span("compilation"));
            let _s = Span::enter(&mut timing.compilation).with_histogram(h_compilation.clone());
            let mut code_bytes = 0u64;
            for p in &population {
                code_bytes += p.encode().len() as u64;
            }
            debug_assert!(code_bytes > 0);
        }

        // Stage time behind the population entering each evaluation:
        // bootstrap generation + compilation for iteration 0, mutation +
        // compilation from step 3 afterwards.
        let mut pending_generation = timing.generation;
        let mut pending_mutation = Duration::ZERO;
        let mut pending_compilation = timing.compilation;

        let mut survivors: Vec<(f64, Program)> = Vec::new();
        let mut samples = Vec::new();
        // Evaluation memo: semantic fingerprint → coverage. Run-local so
        // concurrent runs never share state and reproducibility is a
        // property of the run alone.
        let mut memo: HashMap<u128, f64> = HashMap::new();
        // Lineage flight recorder: scores of every parent that produced
        // offspring (keyed by the fingerprint the Mutator stamps into
        // each child), and per-operator totals over the whole run.
        let mut parent_scores: HashMap<u128, f64> = HashMap::new();
        let mut op_totals: BTreeMap<String, OpRound> = BTreeMap::new();

        // Live streaming (schema v4): round-granularity `progress` and
        // `resource` records every `stream_every` rounds. Counter
        // handles are resolved once here; when streaming is off the
        // loop below pays a single boolean test per round.
        let streaming = self.stream_every > 0 && self.telemetry.enabled();
        let steal_counter = metrics.counter("evaluator.steals");
        let mut stream_rate = EwmaRate::default();
        let mut last_done = 0u64;
        let mut last_elapsed_ns = 0u64;
        let mut last_hits = 0u64;
        let mut last_misses = 0u64;
        let mut last_steals = 0u64;

        for iter in 0..=self.cfg.iterations {
            // Step 1: evaluate the new offspring (through the memo when
            // enabled; the cached score of a repeat program is
            // bit-identical to a fresh one either way).
            let eval_before = timing.evaluation;
            let scores = {
                let _p = prof.map(|p| p.span("evaluation"));
                let _s = Span::enter(&mut timing.evaluation).with_histogram(h_evaluation.clone());
                if self.memo_enabled {
                    self.score_population(&population, &mut memo, &cache_hits, &cache_misses)
                } else {
                    let refs: Vec<&Program> = population.iter().collect();
                    self.evaluator
                        .evaluate_population_refs(&refs, self.cfg.threads)
                }
            };
            let eval_spent = timing.evaluation - eval_before;
            iter_counter.inc();
            let evaluated = scores.len();
            timing.programs_evaluated += evaluated as u64;
            timing.instructions_processed += evaluated as u64 * n_insts;
            let round = RoundStats::from_scores(&scores);

            // Lineage: attribute each offspring's coverage delta to the
            // operator that produced it (genesis programs carry no
            // operator and stay out of the ranking).
            let mut round_ops: BTreeMap<String, OpRound> = BTreeMap::new();
            let mut deltas: Vec<Option<(String, f64)>> = vec![None; population.len()];
            for (i, prog) in population.iter().enumerate() {
                let prov = &prog.provenance;
                let (Some(parent), Some(op)) = (prov.parent, prov.operator.as_ref()) else {
                    continue;
                };
                let Some(&parent_score) = parent_scores.get(&parent) else {
                    continue;
                };
                let delta = scores[i] - parent_score;
                let e = round_ops.entry(op.clone()).or_default();
                if e.offspring == 0 {
                    e.delta_max = delta;
                }
                e.offspring += 1;
                e.delta_sum += delta;
                e.delta_max = e.delta_max.max(delta);
                deltas[i] = Some((op.clone(), delta));
            }

            // Step 2: (μ+λ) selection — survivors compete with offspring.
            // Offspring keep their population index so survivor churn and
            // operator attribution can be journalled.
            let mut pool: Vec<(f64, Program, Option<usize>)> = scores
                .into_iter()
                .zip(std::mem::take(&mut population))
                .enumerate()
                .map(|(i, (c, p))| (c, p, Some(i)))
                .collect();
            pool.extend(
                std::mem::take(&mut survivors)
                    .into_iter()
                    .map(|(c, p)| (c, p, None)),
            );
            pool.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("coverage is finite"));
            pool.truncate(self.cfg.top_k);
            let new_survivors = pool.iter().filter(|(_, _, new)| new.is_some()).count();
            for (_, _, idx) in &pool {
                if let Some((op, delta)) = idx.and_then(|i| deltas[i].as_ref()) {
                    let e = round_ops.entry(op.clone()).or_default();
                    e.survivors += 1;
                    e.realized_gain += delta.max(0.0);
                }
            }
            survivors = pool.into_iter().map(|(c, p, _)| (c, p)).collect();

            self.telemetry.emit(|| {
                Record::new("iteration")
                    .field("iter", iter)
                    .field("evaluated", evaluated)
                    .field("best", round.best)
                    .field("mean", round.mean)
                    .field("champion", survivors[0].0)
                    .field("kth", survivors[survivors.len() - 1].0)
                    .field("new_survivors", new_survivors)
                    .field("generation_ns", pending_generation.as_nanos() as u64)
                    .field("mutation_ns", pending_mutation.as_nanos() as u64)
                    .field("compilation_ns", pending_compilation.as_nanos() as u64)
                    .field("evaluation_ns", eval_spent.as_nanos() as u64)
            });
            pending_generation = Duration::ZERO;

            if streaming && iter % self.stream_every == 0 {
                let elapsed_ns = t_total.elapsed().as_nanos() as u64;
                // Rounds, counting the bootstrap round 0: the natural
                // unit of the refine loop's ETA.
                let done = (iter + 1) as u64;
                let total = (self.cfg.iterations + 1) as u64;
                stream_rate.observe(done - last_done, elapsed_ns - last_elapsed_ns);
                let champion = survivors[0].0;
                let evaluated = timing.programs_evaluated;
                self.telemetry.emit(|| {
                    let mut r = Record::new("progress")
                        .field("source", "refine")
                        .field("done", done)
                        .field("total", total)
                        .field("champion", champion)
                        .field("evaluated", evaluated)
                        .field("elapsed_ns", elapsed_ns);
                    if let Some(unit_ns) = stream_rate.unit_ns() {
                        r = r.field("units_per_sec", 1e9 / unit_ns as f64);
                    }
                    if let Some(eta) = stream_rate.eta_ns(total - done) {
                        r = r.field("eta_ns", eta);
                    }
                    r
                });
                let hits = cache_hits.get();
                let misses = cache_misses.get();
                let steals = steal_counter.get();
                let (dh, dm, ds) = (hits - last_hits, misses - last_misses, steals - last_steals);
                self.telemetry.emit(|| {
                    let mut r = Record::new("resource")
                        .field("source", "refine")
                        .field("cache_hits_delta", dh)
                        .field("cache_misses_delta", dm)
                        .field("steals_delta", ds)
                        .field("rss_bytes", rss_bytes())
                        .field("elapsed_ns", elapsed_ns);
                    if dh + dm > 0 {
                        r = r.field("hit_rate", dh as f64 / (dh + dm) as f64);
                    }
                    r
                });
                last_done = done;
                last_elapsed_ns = elapsed_ns;
                last_hits = hits;
                last_misses = misses;
                last_steals = steals;
                // Interim profile snapshot so `harpo watch` can show the
                // hottest span mid-run. Profile records are cumulative;
                // consumers keep the last one per thread.
                if let Some(p) = prof {
                    p.publish("refine", &self.telemetry);
                }
            }

            // One `lineage` record per operator active this round, and
            // run-total accumulation for the final efficacy ranking.
            for (op, r) in &round_ops {
                self.telemetry.emit(|| {
                    Record::new("lineage")
                        .field("iter", iter)
                        .field("operator", Value::Str(op.clone()))
                        .field("offspring", r.offspring)
                        .field("survivors", r.survivors)
                        .field("delta_mean", r.delta_sum / r.offspring as f64)
                        .field("delta_max", r.delta_max)
                        .field("realized_gain", r.realized_gain)
                });
                let t = op_totals.entry(op.clone()).or_default();
                if t.offspring == 0 {
                    t.delta_max = r.delta_max;
                }
                t.offspring += r.offspring;
                t.survivors += r.survivors;
                t.delta_sum += r.delta_sum;
                t.delta_max = t.delta_max.max(r.delta_max);
                t.realized_gain += r.realized_gain;
            }

            if iter % self.cfg.sample_every == 0 || iter == self.cfg.iterations {
                samples.push(Sample {
                    iteration: iter,
                    top_coverages: survivors.iter().map(|(c, _)| *c).collect(),
                    champion: survivors[0].1.clone(),
                });
            }
            if iter == self.cfg.iterations {
                break;
            }

            // Step 3: mutation produces the next offspring generation.
            // Each parent is fingerprinted once (the key its offspring's
            // provenance will carry) and its score recorded for the next
            // round's lineage deltas; offspring slots cycle through the
            // operator set.
            let mut_before = timing.mutation;
            {
                let _p = prof.map(|p| p.span("mutation"));
                let _s = Span::enter(&mut timing.mutation).with_histogram(h_mutation.clone());
                let m = self.cfg.offspring_per_parent();
                population = Vec::with_capacity(self.cfg.population);
                'fill: for (pi, (score, parent)) in survivors.iter().enumerate() {
                    let pfp = fingerprint(parent);
                    parent_scores.insert(pfp, *score);
                    for oi in 0..m {
                        if population.len() >= self.cfg.population {
                            break 'fill;
                        }
                        let seed = self
                            .cfg
                            .seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((iter as u64) << 20)
                            .wrapping_add((pi as u64) << 8)
                            .wrapping_add(oi as u64);
                        let op = self.operators[(pi + oi) % self.operators.len()];
                        let mut child = self.mutator.mutate_from(parent, pfp, seed, op);
                        child.provenance.birth_round = (iter + 1) as u32;
                        population.push(child);
                    }
                }
            }
            pending_mutation = timing.mutation - mut_before;

            // "Generation"/"compilation" per iteration: re-materialise
            // the offspring artefacts.
            let comp_before = timing.compilation;
            {
                let _p = prof.map(|p| p.span("compilation"));
                let _s = Span::enter(&mut timing.compilation).with_histogram(h_compilation.clone());
                for p in &population {
                    std::hint::black_box(p.encode());
                }
            }
            pending_compilation = timing.compilation - comp_before;
        }

        timing.total = t_total.elapsed();
        timing.iterations = self.cfg.iterations;
        // Close the root span before the final snapshot so its
        // self-time (loop bookkeeping outside the four stages) is
        // committed, then journal the definitive profile record.
        drop(root_span);
        if let Some(p) = prof {
            p.publish("refine", &self.telemetry);
        }
        let (champion_coverage, champion) = survivors.swap_remove(0);

        // Rank operators by realized gain (ties broken by label so the
        // journal is deterministic) and publish the per-run efficacy
        // record before the summary.
        let mut efficacy: Vec<OperatorEfficacy> = op_totals
            .into_iter()
            .map(|(operator, t)| OperatorEfficacy {
                operator,
                offspring: t.offspring,
                survivors: t.survivors,
                realized_gain: t.realized_gain,
                mean_delta: t.delta_sum / t.offspring as f64,
                max_delta: t.delta_max,
            })
            .collect();
        efficacy.sort_by(|a, b| {
            b.realized_gain
                .partial_cmp(&a.realized_gain)
                .expect("gains are finite")
                .then_with(|| a.operator.cmp(&b.operator))
        });
        if !efficacy.is_empty() {
            self.telemetry.emit(|| {
                let rows = efficacy
                    .iter()
                    .map(|e| {
                        Value::Obj(vec![
                            ("operator".into(), Value::Str(e.operator.clone())),
                            ("offspring".into(), Value::U64(e.offspring)),
                            ("survivors".into(), Value::U64(e.survivors)),
                            ("realized_gain".into(), Value::F64(e.realized_gain)),
                            ("mean_delta".into(), Value::F64(e.mean_delta)),
                            ("max_delta".into(), Value::F64(e.max_delta)),
                        ])
                    })
                    .collect();
                Record::new("operator_efficacy").field("operators", Value::Arr(rows))
            });
        }

        self.telemetry.emit(|| {
            Record::new("summary")
                .field("iterations", timing.iterations)
                .field("champion_coverage", champion_coverage)
                .field("programs_evaluated", timing.programs_evaluated)
                .field("cache_hits", cache_hits.get())
                .field("cache_misses", cache_misses.get())
                .field("instructions_processed", timing.instructions_processed)
                .field("insts_per_sec", timing.instructions_per_second())
                .field("generation_ns", timing.generation.as_nanos() as u64)
                .field("mutation_ns", timing.mutation.as_nanos() as u64)
                .field("compilation_ns", timing.compilation.as_nanos() as u64)
                .field("evaluation_ns", timing.evaluation.as_nanos() as u64)
                .field("total_ns", timing.total.as_nanos() as u64)
                .field("counters", self.evaluator.metrics().to_value())
        });
        self.telemetry.flush();

        RunReport {
            samples,
            champion,
            champion_coverage,
            timing,
            efficacy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_coverage::TargetStructure;
    use harpo_museqgen::GenConstraints;
    use harpo_uarch::OooCore;

    fn tiny_harpocrates(structure: TargetStructure, iters: usize) -> Harpocrates {
        let gen = Generator::new(GenConstraints {
            n_insts: 200,
            ..GenConstraints::default()
        });
        let ev = Evaluator::new(OooCore::default(), structure);
        Harpocrates::new(
            gen,
            ev,
            LoopConfig {
                population: 8,
                top_k: 2,
                iterations: iters,
                sample_every: 2,
                seed: 1,
                threads: 2,
            },
        )
    }

    fn tiny_loop(structure: TargetStructure, iters: usize) -> RunReport {
        tiny_harpocrates(structure, iters).run()
    }

    #[test]
    fn coverage_improves_over_iterations() {
        let r = tiny_loop(TargetStructure::IntMultiplier, 12);
        let first = r.samples.first().unwrap().top_coverages[0];
        let last = r.champion_coverage;
        assert!(
            last > first,
            "refinement must help: start {first:.4}, end {last:.4}"
        );
    }

    #[test]
    fn best_coverage_is_monotone() {
        let r = tiny_loop(TargetStructure::IntAdder, 10);
        let mut prev = 0.0;
        for s in &r.samples {
            assert!(
                s.top_coverages[0] >= prev - 1e-12,
                "peak regressed at iteration {}",
                s.iteration
            );
            prev = s.top_coverages[0];
        }
    }

    #[test]
    fn report_is_complete() {
        let r = tiny_loop(TargetStructure::Irf, 6);
        assert!(!r.samples.is_empty());
        assert_eq!(r.samples.last().unwrap().iteration, 6);
        assert!(r.timing.programs_evaluated >= 8 * 6);
        assert!(r.timing.total > Duration::ZERO);
        assert!(r.champion_coverage > 0.0);
        assert_eq!(r.champion.len(), 201);
    }

    #[test]
    fn offspring_per_parent_rounds_up() {
        let cfg = LoopConfig {
            population: 10,
            top_k: 3,
            ..LoopConfig::default()
        };
        assert_eq!(cfg.offspring_per_parent(), 4, "ceil(10/3)");
    }

    #[test]
    fn zero_duration_rates_are_zero() {
        // A run so fast the clock never ticks must report 0.0, not
        // inf/NaN (division guard on the rate helpers).
        let t = LoopTiming {
            instructions_processed: 1_000,
            programs_evaluated: 10,
            ..LoopTiming::default()
        };
        assert_eq!(t.total, Duration::ZERO);
        assert_eq!(t.instructions_per_second(), 0.0);
        let empty = LoopTiming::default();
        assert_eq!(empty.instructions_per_second(), 0.0);
    }

    #[test]
    fn timing_throughput_is_positive() {
        let r = tiny_loop(TargetStructure::IntAdder, 3);
        assert!(r.timing.instructions_per_second() > 0.0);
        assert!(r.timing.evaluation > Duration::ZERO);
    }

    #[test]
    fn sampling_interval_respected() {
        let r = tiny_loop(TargetStructure::IntAdder, 10);
        // sample_every = 2 in tiny_loop → iterations 0,2,4,6,8,10.
        let iters: Vec<usize> = r.samples.iter().map(|s| s.iteration).collect();
        assert_eq!(iters, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = tiny_loop(TargetStructure::IntMultiplier, 5);
        let b = tiny_loop(TargetStructure::IntMultiplier, 5);
        assert_eq!(a.champion_coverage, b.champion_coverage);
        assert_eq!(a.champion.insts, b.champion.insts);
    }

    #[test]
    fn journal_records_every_iteration_and_a_summary() {
        use harpo_telemetry::MemorySink;
        use std::sync::Arc;

        let mem = Arc::new(MemorySink::new());
        let r = tiny_harpocrates(TargetStructure::IntAdder, 4)
            .with_telemetry(Telemetry::to(mem.clone()))
            .run();

        let iters = mem.records_of("iteration");
        assert_eq!(iters.len(), 5, "iterations 0..=4 each journal a record");
        for (i, rec) in iters.iter().enumerate() {
            assert_eq!(rec.get("iter").unwrap().as_u64(), Some(i as u64));
            assert_eq!(rec.get("evaluated").unwrap().as_u64(), Some(8));
            let best = rec.get("best").unwrap().as_f64().unwrap();
            let mean = rec.get("mean").unwrap().as_f64().unwrap();
            assert!(best >= mean, "best {best} below mean {mean}");
            let churn = rec.get("new_survivors").unwrap().as_u64().unwrap();
            assert!(churn <= 2, "churn bounded by top_k");
        }
        // Iteration 0 is produced by bootstrap generation, later ones by
        // mutation.
        assert!(iters[0].get("generation_ns").unwrap().as_u64().unwrap() > 0);
        assert_eq!(iters[1].get("generation_ns").unwrap().as_u64(), Some(0));

        let summaries = mem.records_of("summary");
        assert_eq!(summaries.len(), 1);
        let s = &summaries[0];
        assert_eq!(
            s.get("champion_coverage").unwrap().as_f64(),
            Some(r.champion_coverage)
        );
        assert_eq!(
            s.get("programs_evaluated").unwrap().as_u64(),
            Some(r.timing.programs_evaluated)
        );
        let counters = s.get("counters").unwrap();
        // Every graded program is either freshly simulated (an
        // evaluator.programs tick) or replayed from the memo cache.
        let simulated = counters
            .get("evaluator.programs")
            .unwrap()
            .as_u64()
            .unwrap();
        let hits = counters.get("engine.cache.hits").unwrap().as_u64().unwrap();
        let misses = counters
            .get("engine.cache.misses")
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(simulated + hits, r.timing.programs_evaluated);
        assert_eq!(simulated, misses, "every miss is simulated exactly once");
        assert_eq!(s.get("cache_hits").unwrap().as_u64(), Some(hits));
        assert_eq!(s.get("cache_misses").unwrap().as_u64(), Some(misses));
        assert_eq!(counters.get("engine.iterations").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn memo_cache_replays_repeat_programs() {
        // Evaluate the same population twice by running survivors back
        // through the pool: with replace-all mutation the survivors
        // themselves never re-enter `population`, so drive the cache
        // directly through two identical runs sharing one engine.
        let h = tiny_harpocrates(TargetStructure::IntAdder, 4);
        let a = h.run();
        let hits_after_first = h.metrics().counter("engine.cache.hits").get();
        let misses_after_first = h.metrics().counter("engine.cache.misses").get();
        let b = h.run();
        let hits_after_second = h.metrics().counter("engine.cache.hits").get();

        // The memo is run-local, so the second run starts cold and must
        // behave identically to the first — both in search outcome and
        // in cache statistics.
        assert_eq!(a.champion_coverage, b.champion_coverage);
        assert_eq!(a.champion.insts, b.champion.insts);
        assert_eq!(hits_after_second, hits_after_first * 2);
        assert_eq!(
            h.metrics().counter("engine.cache.misses").get(),
            misses_after_first * 2
        );
        // Cached scores never tick evaluator.programs.
        assert_eq!(
            h.metrics().counter("evaluator.programs").get(),
            misses_after_first * 2
        );
    }

    #[test]
    fn streaming_emits_progress_resource_and_heartbeats() {
        use harpo_telemetry::MemorySink;
        use std::sync::Arc;

        let mem = Arc::new(MemorySink::new());
        // Builder order must not matter: streaming before telemetry.
        let r = tiny_harpocrates(TargetStructure::IntAdder, 4)
            .with_streaming(2)
            .with_telemetry(Telemetry::to(mem.clone()))
            .run();

        // Rounds 0, 2, 4 of 0..=4 each stream one progress + resource.
        let progress = mem.records_of("progress");
        assert_eq!(progress.len(), 3);
        let last = progress.last().unwrap();
        assert_eq!(last.get("source").unwrap().as_str(), Some("refine"));
        assert_eq!(last.get("done").unwrap().as_u64(), Some(5));
        assert_eq!(last.get("total").unwrap().as_u64(), Some(5));
        assert!(last.get("units_per_sec").is_some());
        assert_eq!(last.get("eta_ns").unwrap().as_u64(), Some(0));
        assert!(last.get("champion").unwrap().as_f64().unwrap() > 0.0);

        let resources = mem.records_of("resource");
        assert_eq!(resources.len(), 3);
        for res in &resources {
            assert_eq!(res.get("source").unwrap().as_str(), Some("refine"));
            assert!(res.get("rss_bytes").unwrap().as_u64().unwrap() > 0);
            let hit_rate = res.get("hit_rate").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&hit_rate));
        }
        // 5 rounds × 2 worker threads, one heartbeat per worker batch.
        let beats = mem.records_of("heartbeat");
        assert!(!beats.is_empty());
        for b in &beats {
            assert_eq!(b.get("source").unwrap().as_str(), Some("evaluator"));
            assert!(b.get("worker").unwrap().as_u64().unwrap() < 2);
        }

        // Streaming is observability only: the search is unchanged.
        let plain = tiny_loop(TargetStructure::IntAdder, 4);
        assert_eq!(plain.champion_coverage, r.champion_coverage);
        assert_eq!(plain.champion.insts, r.champion.insts);
    }

    #[test]
    fn streaming_off_emits_no_streaming_records() {
        use harpo_telemetry::{is_streaming_kind, MemorySink};
        use std::sync::Arc;

        let mem = Arc::new(MemorySink::new());
        tiny_harpocrates(TargetStructure::IntAdder, 3)
            .with_telemetry(Telemetry::to(mem.clone()))
            .run();
        assert!(!mem.records().is_empty());
        assert!(mem.records().iter().all(|r| !is_streaming_kind(r.kind)));
    }

    #[test]
    fn journalling_does_not_perturb_the_search() {
        use harpo_telemetry::MemorySink;
        use std::sync::Arc;

        let plain = tiny_loop(TargetStructure::IntMultiplier, 5);
        let mem = Arc::new(MemorySink::new());
        let journalled = tiny_harpocrates(TargetStructure::IntMultiplier, 5)
            .with_telemetry(Telemetry::to(mem.clone()))
            .with_metrics(Metrics::new())
            .run();
        assert!(!mem.records().is_empty());
        assert_eq!(plain.champion_coverage, journalled.champion_coverage);
        assert_eq!(plain.champion.insts, journalled.champion.insts);
        assert_eq!(
            plain.samples.last().unwrap().top_coverages,
            journalled.samples.last().unwrap().top_coverages
        );
    }

    #[test]
    fn profiler_journals_stage_self_times() {
        use harpo_telemetry::{latest_profiles, MemorySink, Profiler};
        use std::sync::Arc;

        let mem = Arc::new(MemorySink::new());
        let profiler = Profiler::new();
        tiny_harpocrates(TargetStructure::IntAdder, 4)
            .with_profiler(profiler.clone())
            .with_streaming(2)
            .with_telemetry(Telemetry::to(mem.clone()))
            .run();

        // Streaming ticks publish interim snapshots plus the final one;
        // consumers keep only the last (cumulative) record per thread.
        let profiles = mem.records_of("profile");
        assert!(profiles.len() >= 2, "interim + final snapshots");
        let values: Vec<harpo_telemetry::Value> = profiles
            .iter()
            .map(|r| harpo_telemetry::json::parse(&r.to_json()).unwrap())
            .collect();
        let refs: Vec<&harpo_telemetry::Value> = values.iter().collect();
        let latest = latest_profiles(&refs);
        assert_eq!(latest.len(), 1, "the loop profiles one thread");
        let frames = match latest[0].get("frames") {
            Some(harpo_telemetry::Value::Arr(fs)) => fs,
            other => panic!("frames missing: {other:?}"),
        };
        let stack =
            |f: &harpo_telemetry::Value| f.get("stack").unwrap().as_str().unwrap().to_string();
        let stacks: Vec<String> = frames.iter().map(stack).collect();
        for expect in [
            "refine",
            "refine;generation",
            "refine;compilation",
            "refine;evaluation",
            "refine;mutation",
        ] {
            assert!(stacks.iter().any(|s| s == expect), "missing {expect}");
        }
        // Self-time decomposition: the root's total equals its self time
        // plus every direct child's total, exactly.
        let field = |f: &harpo_telemetry::Value, k: &str| f.get(k).unwrap().as_u64().unwrap();
        let root = frames.iter().find(|f| stack(f) == "refine").unwrap();
        let child_total: u64 = frames
            .iter()
            .filter(|f| stack(f) != "refine")
            .map(|f| field(f, "total_ns"))
            .sum();
        assert_eq!(
            field(root, "self_ns") + child_total,
            field(root, "total_ns")
        );
        // The snapshot API agrees with the journalled record.
        let snap = profiler.snapshot();
        assert_eq!(snap.threads.len(), 1);
        assert_eq!(snap.threads[0].frames.len(), frames.len());
    }

    #[test]
    fn profiling_does_not_perturb_the_search_or_canonical_journal() {
        use harpo_telemetry::{canonical_journal, MemorySink, Profiler};
        use std::sync::Arc;

        let journal_of = |profiled: bool| {
            let mem = Arc::new(MemorySink::new());
            let mut h = tiny_harpocrates(TargetStructure::IntMultiplier, 4)
                .with_telemetry(Telemetry::to(mem.clone()));
            if profiled {
                h = h.with_profiler(Profiler::new());
            }
            let r = h.run();
            let text: String = mem
                .records()
                .iter()
                .map(|rec| format!("{}\n", rec.to_json()))
                .collect();
            (r, text)
        };
        let (plain, plain_text) = journal_of(false);
        let (profiled, profiled_text) = journal_of(true);
        assert_eq!(plain.champion_coverage, profiled.champion_coverage);
        assert_eq!(plain.champion.insts, profiled.champion.insts);
        // Byte-identity: profiling adds only `profile` records, which
        // canonicalisation strips along with wall-clock fields.
        assert_ne!(plain_text, profiled_text, "profiled run journals more");
        assert_eq!(
            canonical_journal(&plain_text),
            canonical_journal(&profiled_text)
        );
    }
}
