/root/repo/target/release/deps/ablation_l1d-da9c149bd90ce41a.d: crates/bench/src/bin/ablation_l1d.rs

/root/repo/target/release/deps/ablation_l1d-da9c149bd90ce41a: crates/bench/src/bin/ablation_l1d.rs

crates/bench/src/bin/ablation_l1d.rs:
