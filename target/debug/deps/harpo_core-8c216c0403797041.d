/root/repo/target/debug/deps/harpo_core-8c216c0403797041.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/debug/deps/libharpo_core-8c216c0403797041.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/debug/deps/libharpo_core-8c216c0403797041.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/evaluator.rs:
crates/core/src/memo.rs:
crates/core/src/presets.rs:
