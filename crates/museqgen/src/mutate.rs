//! The MuSeqGen mutation engine (paper §V-B1).
//!
//! The paper's production strategy is **replace-all instruction
//! replacement**: pick one instruction form present in the sequence
//! (uniformly) and replace *every* occurrence with another uniformly
//! chosen form, re-resolving operands under the same constraint system.
//! The uniform choice avoids over-specialised mutation operators that
//! trivialise programs or trap in local optima. `k`-point crossover is
//! also provided (the paper evaluated and rejected it; our ablation
//! bench reproduces that comparison).
//!
//! Stack forms (`PUSH`/`POP`) are pinned — neither replaced nor chosen
//! as replacements — so the depth discipline established at generation
//! time survives arbitrarily many mutations.

use crate::generator::{Generator, OperandCtx};
use harpo_isa::fingerprint::fingerprint;
use harpo_isa::form::{Catalog, FormId, Mnemonic};
use harpo_isa::program::{Program, Provenance};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

/// A mutation operator the loop can apply to a parent program.
///
/// [`MutationOp::ReplaceAll`] is the paper's production strategy and the
/// engine's default; the others exist so the lineage flight recorder has
/// real alternatives to rank (the precondition for adaptive operator
/// scheduling). Every operator preserves program length and the stack
/// discipline (`PUSH`/`POP`/`HALT` are never touched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationOp {
    /// Replace-all instruction replacement (paper §V-B1): one form
    /// present in the sequence is replaced at every occurrence by
    /// another uniformly chosen form.
    ReplaceAll,
    /// Operand re-resolution: one form present in the sequence keeps its
    /// mnemonic but every occurrence gets freshly drawn operands — a
    /// data-path-only mutation that perturbs values and addresses
    /// without changing the instruction mix.
    OperandReseed,
}

impl MutationOp {
    /// Every operator, in the order the engine cycles through them.
    pub const ALL: [MutationOp; 2] = [MutationOp::ReplaceAll, MutationOp::OperandReseed];

    /// Stable label used in provenance tags and journal records.
    pub fn label(self) -> &'static str {
        match self {
            MutationOp::ReplaceAll => "replace-all",
            MutationOp::OperandReseed => "operand-reseed",
        }
    }
}

/// The mutation engine; shares the generator's constraint system.
#[derive(Debug, Clone)]
pub struct Mutator {
    gen: Generator,
    replaceable: Vec<FormId>,
}

fn is_pinned(m: Mnemonic) -> bool {
    matches!(m, Mnemonic::Push | Mnemonic::Pop | Mnemonic::Halt)
}

impl Mutator {
    /// Builds a mutator over the generator's domain.
    pub fn new(gen: Generator) -> Mutator {
        let cat = Catalog::get();
        let replaceable = gen
            .allowed()
            .iter()
            .copied()
            .filter(|id| !is_pinned(cat.form(*id).mnemonic))
            .collect();
        Mutator { gen, replaceable }
    }

    /// The underlying generator.
    pub fn generator(&self) -> &Generator {
        &self.gen
    }

    /// Replace-all instruction replacement (the default operator):
    /// returns a mutated copy with the same length, provenance-stamped
    /// with this parent's fingerprint. Same `(program, seed)` → same
    /// mutant.
    pub fn mutate(&self, prog: &Program, seed: u64) -> Program {
        self.mutate_from(prog, fingerprint(prog), seed, MutationOp::ReplaceAll)
    }

    /// Applies a specific operator, computing the parent fingerprint
    /// here. Same `(program, seed, op)` → same mutant.
    pub fn mutate_with(&self, prog: &Program, seed: u64, op: MutationOp) -> Program {
        self.mutate_from(prog, fingerprint(prog), seed, op)
    }

    /// Applies `op` to a parent whose fingerprint the caller already
    /// knows (the engine fingerprints each survivor once instead of once
    /// per offspring). The offspring's provenance records the parent,
    /// operator and seed; the birth round is filled in by the loop.
    pub fn mutate_from(&self, prog: &Program, parent: u128, seed: u64, op: MutationOp) -> Program {
        let mut out = match op {
            MutationOp::ReplaceAll => self.replace_all(prog, seed),
            MutationOp::OperandReseed => self.operand_reseed(prog, seed),
        };
        out.provenance = Provenance::mutated(parent, op.label(), seed);
        out
    }

    /// Replace-all instruction replacement (paper §V-B1).
    fn replace_all(&self, prog: &Program, seed: u64) -> Program {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6D75_7461_746F_7221);
        let cat = Catalog::get();

        // Forms present and eligible for replacement.
        let mut present: Vec<FormId> = prog
            .insts
            .iter()
            .map(|i| i.form)
            .filter(|f| !is_pinned(cat.form(*f).mnemonic))
            .collect();
        present.sort_unstable();
        present.dedup();
        let (Some(&target), Some(&replacement)) =
            (present.choose(&mut rng), self.replaceable.choose(&mut rng))
        else {
            return prog.clone();
        };

        let mut out = prog.clone();
        let mut ctx = OperandCtx::default();
        for (idx, inst) in out.insts.iter_mut().enumerate() {
            if inst.form == target {
                // Spread replacement memory references across the plan
                // by seeding the counter with the instruction index.
                ctx.mem_counter = idx as u64;
                *inst = self.gen.instantiate(replacement, &mut rng, &mut ctx);
            }
        }
        out
    }

    /// Operand re-resolution: every occurrence of one present form keeps
    /// its form but gets freshly drawn operands.
    fn operand_reseed(&self, prog: &Program, seed: u64) -> Program {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6F70_6572_616E_6473);
        let cat = Catalog::get();

        let mut present: Vec<FormId> = prog
            .insts
            .iter()
            .map(|i| i.form)
            .filter(|f| !is_pinned(cat.form(*f).mnemonic))
            .collect();
        present.sort_unstable();
        present.dedup();
        let Some(&target) = present.choose(&mut rng) else {
            return prog.clone();
        };

        let mut out = prog.clone();
        let mut ctx = OperandCtx::default();
        for (idx, inst) in out.insts.iter_mut().enumerate() {
            if inst.form == target {
                ctx.mem_counter = idx as u64;
                *inst = self.gen.instantiate(target, &mut rng, &mut ctx);
            }
        }
        out
    }

    /// `k`-point crossover between two parents of equal length (the
    /// alternative recombination strategy of §V-B1).
    ///
    /// # Panics
    /// Panics if the parents' lengths differ.
    pub fn crossover_kpoint(&self, a: &Program, b: &Program, k: usize, seed: u64) -> Program {
        assert_eq!(a.len(), b.len(), "crossover needs equal-length parents");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6372_6F73_736F_7665);
        let n = a.len();
        let mut points: Vec<usize> = (0..k)
            .map(|_| rand::Rng::random_range(&mut rng, 0..n))
            .collect();
        points.sort_unstable();
        let mut out = a.clone();
        let mut take_b = false;
        let mut pi = 0;
        for i in 0..n {
            while pi < points.len() && points[pi] == i {
                take_b = !take_b;
                pi += 1;
            }
            if take_b {
                out.insts[i] = b.insts[i];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::GenConstraints;
    use harpo_isa::exec::Machine;
    use harpo_isa::fu::NativeFu;

    fn mutator(n: usize) -> Mutator {
        Mutator::new(Generator::new(GenConstraints {
            n_insts: n,
            ..GenConstraints::default()
        }))
    }

    #[test]
    fn mutants_preserve_length_and_run() {
        let m = mutator(1_000);
        let mut p = m.generator().generate(11);
        for seed in 0..10 {
            p = m.mutate(&p, seed);
            assert_eq!(p.len(), 1_001);
            Machine::new(&p, NativeFu)
                .run(100_000)
                .unwrap_or_else(|t| panic!("mutant {seed} trapped: {t}"));
        }
    }

    #[test]
    fn mutation_changes_something() {
        let m = mutator(500);
        let p = m.generator().generate(3);
        let q = m.mutate(&p, 1);
        assert_ne!(p.insts, q.insts);
    }

    #[test]
    fn mutation_is_deterministic() {
        let m = mutator(300);
        let p = m.generator().generate(5);
        assert_eq!(m.mutate(&p, 9).insts, m.mutate(&p, 9).insts);
    }

    #[test]
    fn replace_all_replaces_every_occurrence() {
        let m = mutator(800);
        let p = m.generator().generate(17);
        let q = m.mutate(&p, 4);
        // Find the replaced form: forms in p but with changed instances.
        let changed: Vec<usize> = (0..p.len()).filter(|&i| p.insts[i] != q.insts[i]).collect();
        assert!(!changed.is_empty());
        let target = p.insts[changed[0]].form;
        // Every occurrence of the target form must have been rewritten
        // away (replace-all semantics).
        for i in 0..p.len() {
            if p.insts[i].form == target {
                assert_ne!(q.insts[i].form, target, "occurrence {i} survived");
            } else {
                assert_eq!(p.insts[i], q.insts[i], "non-target {i} modified");
            }
        }
    }

    #[test]
    fn mutants_carry_provenance() {
        let m = mutator(300);
        let p = m.generator().generate(8);
        // Genesis programs record their generator seed and no parent.
        assert_eq!(p.provenance.parent, None);
        assert_eq!(p.provenance.operator, None);
        assert_eq!(p.provenance.seed, 8);
        let pfp = fingerprint(&p);
        for op in MutationOp::ALL {
            let q = m.mutate_with(&p, 41, op);
            assert_eq!(q.provenance.parent, Some(pfp));
            assert_eq!(q.provenance.operator.as_deref(), Some(op.label()));
            assert_eq!(q.provenance.seed, 41);
            // The tag is metadata: the child's own fingerprint ignores it,
            // so an identical mutant from a different round would memo-hit.
            assert_eq!(fingerprint(&q), {
                let mut bare = q.clone();
                bare.provenance = Default::default();
                fingerprint(&bare)
            });
        }
    }

    #[test]
    fn operand_reseed_preserves_the_form_mix() {
        let m = mutator(800);
        let p = m.generator().generate(19);
        let q = m.mutate_with(&p, 5, MutationOp::OperandReseed);
        assert_eq!(p.len(), q.len());
        // Same mnemonic/form at every position; at least one operand
        // changed somewhere.
        for i in 0..p.len() {
            assert_eq!(p.insts[i].form, q.insts[i].form, "form changed at {i}");
        }
        assert_ne!(p.insts, q.insts, "operand reseed must change operands");
        Machine::new(&q, NativeFu)
            .run(100_000)
            .unwrap_or_else(|t| panic!("reseeded mutant trapped: {t}"));
    }

    #[test]
    fn operand_reseed_is_deterministic() {
        let m = mutator(300);
        let p = m.generator().generate(5);
        assert_eq!(
            m.mutate_with(&p, 9, MutationOp::OperandReseed).insts,
            m.mutate_with(&p, 9, MutationOp::OperandReseed).insts
        );
    }

    #[test]
    fn operator_labels_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for op in MutationOp::ALL {
            assert!(seen.insert(op.label()), "duplicate label {}", op.label());
        }
        assert_eq!(MutationOp::ReplaceAll.label(), "replace-all");
    }

    #[test]
    fn stack_balance_survives_mutation_chains() {
        let gen = Generator::new(GenConstraints {
            n_insts: 2_000,
            stack_slots: 16,
            ..GenConstraints::default()
        });
        let m = Mutator::new(gen);
        let mut p = m.generator().generate(23);
        for seed in 0..30 {
            p = m.mutate(&p, seed);
        }
        Machine::new(&p, NativeFu)
            .run(100_000)
            .expect("30-deep mutant still runs cleanly");
    }

    #[test]
    fn crossover_mixes_parents() {
        let m = mutator(400);
        let a = m.generator().generate(1);
        let b = m.generator().generate(2);
        let c = m.crossover_kpoint(&a, &b, 3, 7);
        assert_eq!(c.len(), a.len());
        let from_a = (0..c.len()).filter(|&i| c.insts[i] == a.insts[i]).count();
        let from_b = (0..c.len()).filter(|&i| c.insts[i] == b.insts[i]).count();
        assert!(from_a > 0 && from_b > 0, "a={from_a} b={from_b}");
    }
}
