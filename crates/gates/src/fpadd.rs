//! The graded single-precision FP adder circuit.
//!
//! Implements `harpo_isa::softfp::fadd` structurally: magnitude compare →
//! operand swap → alignment barrel shifter → 24-bit add/subtract →
//! normalisation (leading-zero count + left shift) → truncation → special
//! case priority muxes. The equivalence with the software model is
//! bit-exact and enforced by randomized and property tests.

use crate::components::{
    barrel_right, eq_const, is_zero, mux_bus, normalize_left, or_tree, ripple_add, ripple_sub,
};
use crate::eval::{bit_of, Evaluator, FaultSet};
use crate::fp_common::{decode_fp, inf_bus, pack_fp, qnan_bus, select, zero_bus};
use crate::netlist::{Netlist, NetlistBuilder, WireId};
use std::sync::OnceLock;

/// The single-precision FP adder.
#[derive(Debug)]
pub struct FpAddCircuit {
    net: Netlist,
    out: Vec<WireId>,
}

impl FpAddCircuit {
    /// Builds the circuit (prefer the shared [`fp_adder`] instance).
    pub fn build() -> FpAddCircuit {
        let mut b = NetlistBuilder::new("fp-adder-f32");
        let a_bus = b.input_bus(32);
        let b_bus = b.input_bus(32);
        let fa = decode_fp(&mut b, &a_bus);
        let fb = decode_fp(&mut b, &b_bus);

        // Magnitude order on (exp:man) — 31-bit compare via subtraction.
        let mut mag_a = fa.man.clone();
        mag_a.extend_from_slice(&fa.exp);
        let mut mag_b = fb.man.clone();
        mag_b.extend_from_slice(&fb.exp);
        let (_, a_ge_b) = ripple_sub(&mut b, &mag_a, &mag_b);

        let s_big = b.mux(a_ge_b, fa.sign, fb.sign);
        let e_big = mux_bus(&mut b, a_ge_b, &fa.exp, &fb.exp);
        let e_small = mux_bus(&mut b, a_ge_b, &fb.exp, &fa.exp);
        let m_big = mux_bus(&mut b, a_ge_b, &fa.sig, &fb.sig);
        let m_small_raw = mux_bus(&mut b, a_ge_b, &fb.sig, &fa.sig);

        // Alignment distance d = e_big - e_small (8 bits, non-negative).
        let (d, _) = ripple_sub(&mut b, &e_big, &e_small);
        // Shifts of 32+ leave nothing (24-bit significand): zero the
        // shifted operand when any high distance bit is set.
        let d_hi = or_tree(&mut b, &d[5..8]);
        let shifted = barrel_right(&mut b, &m_small_raw, &d[..5]);
        let zeros24 = crate::components::const_bus(0, 24);
        let m_small = mux_bus(&mut b, d_hi, &zeros24, &shifted);

        let same_sign = b.xnor(fa.sign, fb.sign);

        // --- Same-sign path: 24-bit add, possible carry renormalise. ---
        let (ssum, scarry) = ripple_add(&mut b, &m_big, &m_small, WireId::ZERO);
        // Mantissa out: with carry take bits [1..=23], else [0..=22].
        let m_sum: Vec<WireId> = (0..23)
            .map(|i| b.mux(scarry, ssum[i + 1], ssum[i]))
            .collect();
        // e_sum = e_big + carry (9 bits).
        let mut e_big9 = e_big.clone();
        e_big9.push(WireId::ZERO);
        let zeros9 = crate::components::const_bus(0, 9);
        let (e_sum9, _) = ripple_add(&mut b, &e_big9, &zeros9, scarry);
        let sum_inf = eq_const(&mut b, &e_sum9, 255);

        // --- Opposite-sign path: 24-bit subtract, normalise. ---
        let (diff, _) = ripple_sub(&mut b, &m_big, &m_small);
        let diff_zero = is_zero(&mut b, &diff);
        let (norm, lz) = normalize_left(&mut b, &diff);
        let m_diff: Vec<WireId> = norm[..23].to_vec();
        // e_diff = e_big - lz (9-bit).
        let mut lz9 = lz.clone();
        while lz9.len() < 9 {
            lz9.push(WireId::ZERO);
        }
        let (e_diff9, no_borrow) = ripple_sub(&mut b, &e_big9, &lz9);
        let e_diff_zero = is_zero(&mut b, &e_diff9);
        let borrow = b.not(no_borrow);
        let under = b.or(borrow, e_diff_zero);

        // --- Merge paths. ---
        let main_e = mux_bus(&mut b, same_sign, &e_sum9[..8], &e_diff9[..8]);
        let main_m = mux_bus(&mut b, same_sign, &m_sum, &m_diff);
        let mut r = pack_fp(s_big, &main_e, &main_m);

        // Same-sign exponent overflow → infinity.
        let inf_big = inf_bus(s_big);
        let ovf = b.and(same_sign, sum_inf);
        r = select(&mut b, ovf, &inf_big, &r);
        // Opposite-sign underflow → signed zero.
        let not_same = b.not(same_sign);
        let z_big = zero_bus(s_big);
        let und = b.and(not_same, under);
        r = select(&mut b, und, &z_big, &r);
        // Exact cancellation → +0.
        let plus0 = zero_bus(WireId::ZERO);
        let cancel = b.and(not_same, diff_zero);
        r = select(&mut b, cancel, &plus0, &r);

        // --- Special operands (highest priority last). ---
        let nb_zero = b.not(fb.is_zero);
        let a0_only = b.and(fa.is_zero, nb_zero);
        r = select(&mut b, a0_only, &b_bus, &r);
        let na_zero = b.not(fa.is_zero);
        let b0_only = b.and(fb.is_zero, na_zero);
        r = select(&mut b, b0_only, &a_bus, &r);
        let both0 = b.and(fa.is_zero, fb.is_zero);
        let minus_both = b.and(fa.sign, fb.sign);
        let z00 = zero_bus(minus_both);
        r = select(&mut b, both0, &z00, &r);

        let nb_inf = b.not(fb.is_inf);
        let ainf_only = b.and(fa.is_inf, nb_inf);
        r = select(&mut b, ainf_only, &a_bus, &r);
        let na_inf = b.not(fa.is_inf);
        let binf_only = b.and(fb.is_inf, na_inf);
        r = select(&mut b, binf_only, &b_bus, &r);
        let both_inf = b.and(fa.is_inf, fb.is_inf);
        let bi_same = b.and(both_inf, same_sign);
        r = select(&mut b, bi_same, &a_bus, &r);
        let bi_diff = b.and(both_inf, not_same);
        let qn = qnan_bus();
        r = select(&mut b, bi_diff, &qn, &r);

        let nan_any = b.or(fa.is_nan, fb.is_nan);
        r = select(&mut b, nan_any, &qn, &r);

        let net = b.finish(r.clone());
        FpAddCircuit { net, out: r }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Evaluates lane 0.
    pub fn eval(&self, ev: &mut Evaluator, a: u32, b: u32, faults: &FaultSet) -> u32 {
        ev.run(
            &self.net,
            |i| {
                if i < 32 {
                    bit_of(a as u64, i)
                } else {
                    bit_of(b as u64, i - 32)
                }
            },
            faults,
        );
        ev.bus(&self.out, 0) as u32
    }

    /// Packed evaluation across fault lanes.
    pub fn eval_lanes(
        &self,
        ev: &mut Evaluator,
        a: u32,
        b: u32,
        faults: &FaultSet,
        out: &mut [u64; 64],
    ) {
        ev.run(
            &self.net,
            |i| {
                if i < 32 {
                    bit_of(a as u64, i)
                } else {
                    bit_of(b as u64, i - 32)
                }
            },
            faults,
        );
        ev.bus_all_lanes(&self.out, out);
    }
}

/// The process-wide FP adder circuit (built once).
pub fn fp_adder() -> &'static FpAddCircuit {
    static C: OnceLock<FpAddCircuit> = OnceLock::new();
    C.get_or_init(FpAddCircuit::build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::softfp;

    fn check(a: u32, b: u32) {
        let c = fp_adder();
        let mut ev = Evaluator::new(c.netlist());
        let got = c.eval(&mut ev, a, b, &FaultSet::none());
        let want = softfp::fadd(a, b);
        assert_eq!(
            got,
            want,
            "fadd({:#010x} [{}], {:#010x} [{}]) = {:#010x}, want {:#010x}",
            a,
            f32::from_bits(a),
            b,
            f32::from_bits(b),
            got,
            want
        );
    }

    #[test]
    fn simple_sums() {
        for (a, b) in [
            (1.0f32, 2.0f32),
            (0.5, 0.25),
            (-1.5, 0.75),
            (100.0, -100.0),
            (1e20, 1.0),
            (3.25, 3.25),
            (-0.0, 0.0),
            (-0.0, -0.0),
        ] {
            check(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn special_values() {
        let inf = f32::INFINITY.to_bits();
        let ninf = f32::NEG_INFINITY.to_bits();
        let nan = softfp::QNAN;
        for (a, b) in [
            (inf, 1.0f32.to_bits()),
            (ninf, inf),
            (inf, inf),
            (nan, 2.0f32.to_bits()),
            (1.0f32.to_bits(), nan),
            (0, 5.0f32.to_bits()),
            (5.0f32.to_bits(), 0),
            (1, 2), // two denormals: flush to zero
        ] {
            check(a, b);
        }
    }

    #[test]
    fn overflow_and_underflow() {
        let big = f32::MAX.to_bits();
        check(big, big); // → inf
        let tiny = f32::MIN_POSITIVE.to_bits();
        let tiny2 = (f32::MIN_POSITIVE * 1.5).to_bits();
        check(tiny2, tiny | 0x8000_0000); // cancellation near underflow
    }

    #[test]
    fn seeded_random_equivalence() {
        let c = fp_adder();
        let mut ev = Evaluator::new(c.netlist());
        let mut s = 0xABCD_EF01u64;
        for i in 0..2_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = s as u32;
            let b = (s >> 32) as u32;
            let got = c.eval(&mut ev, a, b, &FaultSet::none());
            let want = softfp::fadd(a, b);
            assert_eq!(got, want, "iter {i}: fadd({a:#010x}, {b:#010x})");
        }
    }

    #[test]
    fn faults_can_activate() {
        let c = fp_adder();
        let mut ev = Evaluator::new(c.netlist());
        let a = 1.5f32.to_bits();
        let b = 2.25f32.to_bits();
        let golden = c.eval(&mut ev, a, b, &FaultSet::none());
        let mut activated = 0;
        for g in (0..c.netlist().gate_count() as u32).step_by(7) {
            if c.eval(&mut ev, a, b, &FaultSet::single(g, true)) != golden {
                activated += 1;
            }
        }
        assert!(activated > 0);
    }
}
