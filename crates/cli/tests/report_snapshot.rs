//! Golden snapshot of `harpo report`: rendering the committed journal
//! and bench baseline must reproduce the committed report byte-for-byte.
//!
//! Rendering is a pure function of the input bytes, so this pins the
//! whole report pipeline — JSON parsing, section layout, number
//! formatting, plateau detection. Regenerate with:
//!
//! ```text
//! cargo run --example golden_journal
//! cargo run -p harpo-cli --bin harpo -- report tests/data/golden_run.jsonl \
//!     tests/data/BENCH_pipeline.json --out tests/data/golden_report.md
//! ```
//!
//! `tests/data/BENCH_pipeline.json` is a frozen copy of the bench
//! baseline — the committed root baseline moves when benchmarks are
//! re-run, and the snapshot must not.

use harpo_cli::report::render;

fn repo_file(rel: &str) -> String {
    let path = format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn golden_report_is_byte_identical() {
    let inputs = [
        (
            "tests/data/golden_run.jsonl".to_string(),
            repo_file("tests/data/golden_run.jsonl"),
        ),
        (
            "tests/data/BENCH_pipeline.json".to_string(),
            repo_file("tests/data/BENCH_pipeline.json"),
        ),
    ];
    let rendered = render(&inputs).expect("golden journal renders");
    let committed = repo_file("tests/data/golden_report.md");
    assert_eq!(
        rendered, committed,
        "report output drifted from tests/data/golden_report.md — \
         if the change is intentional, regenerate the golden files \
         (see this test's module docs)"
    );
}

/// The streaming (schema v4) liveness section pins the same way: a
/// hand-written budget-stopped campaign journal with heartbeats, a
/// stall and a resume cursor. Regenerate with:
///
/// ```text
/// cargo run -p harpo-cli --bin harpo -- report tests/data/golden_stream.jsonl \
///     --out tests/data/golden_stream_report.md
/// ```
#[test]
fn golden_stream_report_is_byte_identical() {
    let inputs = [(
        "tests/data/golden_stream.jsonl".to_string(),
        repo_file("tests/data/golden_stream.jsonl"),
    )];
    let rendered = render(&inputs).expect("golden stream journal renders");
    let committed = repo_file("tests/data/golden_stream_report.md");
    assert_eq!(
        rendered, committed,
        "liveness report drifted from tests/data/golden_stream_report.md — \
         if the change is intentional, regenerate the golden file \
         (see this test's docs)"
    );
    for needle in [
        "### Run liveness",
        "time to first SDC",
        "Worker utilization",
        "stall(s) flagged by the watchdog",
        "resumable cursor",
    ] {
        assert!(
            rendered.contains(needle),
            "liveness lost {needle}:\n{rendered}"
        );
    }
}

#[test]
fn golden_journal_has_the_flagship_sections() {
    let md = render(&[(
        "golden_run.jsonl".to_string(),
        repo_file("tests/data/golden_run.jsonl"),
    )])
    .unwrap();
    for needle in [
        "### Run summary",
        "### Convergence",
        "### Operator efficacy",
        "`replace-all`",
        "`operand-reseed`",
        "### Stage wall clock",
        "### Cache and stalls",
        "### Fault-injection campaigns",
        "Replay length",
    ] {
        assert!(md.contains(needle), "golden journal lost {needle}:\n{md}");
    }
}
