/root/repo/target/release/deps/ablation_mutation-0fa8b25abd86900a.d: crates/bench/src/bin/ablation_mutation.rs

/root/repo/target/release/deps/ablation_mutation-0fa8b25abd86900a: crates/bench/src/bin/ablation_mutation.rs

crates/bench/src/bin/ablation_mutation.rs:
