#![warn(missing_docs)]

//! # harpo-coverage — hardware coverage metrics
//!
//! The fast, structure-specific *hardware coverage* metrics that drive
//! the Harpocrates refinement loop (paper §II-C/§II-D): ACE lifetime
//! analysis for bit-array structures (physical integer register file and
//! L1 data cache) and the Input Bit Ratio for functional units. Both are
//! computed from a single `harpo_uarch::ExecutionTrace`, making them
//! cheap enough to evaluate on every genetic iteration while correlating
//! with the fault detection capability measured (much more slowly) by
//! statistical fault injection.

pub mod ace;
pub mod ibr;
pub mod liveness;
pub mod objective;

pub use ace::{
    ace_overlay_of, irf_ace, irf_ace_per_bit, l1d_ace, l1d_ace_per_bit, xrf_ace, xrf_ace_per_bit,
    AceReport,
};
pub use ibr::{ibr, input_width, IbrReport};
pub use liveness::dynamic_liveness;
pub use objective::TargetStructure;
