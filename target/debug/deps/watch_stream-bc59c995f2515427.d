/root/repo/target/debug/deps/watch_stream-bc59c995f2515427.d: crates/cli/tests/watch_stream.rs Cargo.toml

/root/repo/target/debug/deps/libwatch_stream-bc59c995f2515427.rmeta: crates/cli/tests/watch_stream.rs Cargo.toml

crates/cli/tests/watch_stream.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_harpo=placeholder:harpo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
