/root/repo/target/debug/deps/rate_comparison-37b55beeec07de0f.d: crates/bench/src/bin/rate_comparison.rs

/root/repo/target/debug/deps/rate_comparison-37b55beeec07de0f: crates/bench/src/bin/rate_comparison.rs

crates/bench/src/bin/rate_comparison.rs:
