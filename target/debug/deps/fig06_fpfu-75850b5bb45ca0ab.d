/root/repo/target/debug/deps/fig06_fpfu-75850b5bb45ca0ab.d: crates/bench/src/bin/fig06_fpfu.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_fpfu-75850b5bb45ca0ab.rmeta: crates/bench/src/bin/fig06_fpfu.rs Cargo.toml

crates/bench/src/bin/fig06_fpfu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
