(function() {
    const implementors = Object.fromEntries([["harpo_isa",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hasher.html\" title=\"trait core::hash::Hasher\">Hasher</a> for <a class=\"struct\" href=\"harpo_isa/fingerprint/struct.Fnv128.html\" title=\"struct harpo_isa::fingerprint::Fnv128\">Fnv128</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hasher.html\" title=\"trait core::hash::Hasher\">Hasher</a> for <a class=\"struct\" href=\"harpo_isa/hash/struct.MixHasher.html\" title=\"struct harpo_isa::hash::MixHasher\">MixHasher</a>",0]]],["harpo_isa",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hasher.html\" title=\"trait core::hash::Hasher\">Hasher</a> for <a class=\"struct\" href=\"harpo_isa/fingerprint/struct.Fnv128.html\" title=\"struct harpo_isa::fingerprint::Fnv128\">Fnv128</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[568,295]}