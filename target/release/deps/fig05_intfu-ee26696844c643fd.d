/root/repo/target/release/deps/fig05_intfu-ee26696844c643fd.d: crates/bench/src/bin/fig05_intfu.rs

/root/repo/target/release/deps/fig05_intfu-ee26696844c643fd: crates/bench/src/bin/fig05_intfu.rs

crates/bench/src/bin/fig05_intfu.rs:
