/root/repo/target/debug/deps/table1_loopstep-ff0c42630a2883c8.d: crates/bench/src/bin/table1_loopstep.rs

/root/repo/target/debug/deps/table1_loopstep-ff0c42630a2883c8: crates/bench/src/bin/table1_loopstep.rs

crates/bench/src/bin/table1_loopstep.rs:
