/root/repo/target/debug/deps/harpo_museqgen-bf03afd3e779afcf.d: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/debug/deps/libharpo_museqgen-bf03afd3e779afcf.rlib: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/debug/deps/libharpo_museqgen-bf03afd3e779afcf.rmeta: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

crates/museqgen/src/lib.rs:
crates/museqgen/src/constraints.rs:
crates/museqgen/src/generator.rs:
crates/museqgen/src/mutate.rs:
