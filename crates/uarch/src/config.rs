//! Out-of-order core configuration.
//!
//! Defaults follow publicly available parameters of commercial x86 cores
//! (as the paper does for its gem5 model, §III-B1): a 4-wide machine with
//! a 192-entry ROB, 128 integer physical registers and a 32 KiB 8-way L1
//! data cache.

use serde::{Deserialize, Serialize};

/// Core and memory-hierarchy parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions dispatched (renamed) per cycle.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob_size: u32,
    /// Issue-queue entries (unified).
    pub iq_size: u32,
    /// Integer physical register file size — the IRF structure graded by
    /// ACE analysis and targeted by transient fault injection.
    pub phys_regs: u32,
    /// XMM physical register file size (the 128-bit FP rename pool).
    pub phys_xmm: u32,
    /// Frontend depth in cycles (fetch → dispatch).
    pub frontend_depth: u32,
    /// Branch misprediction redirect penalty in cycles.
    pub mispredict_penalty: u32,
    /// Number of ALU pipes (logic/shift/adds issue here).
    pub alu_pipes: u32,
    /// Number of load ports.
    pub load_ports: u32,
    /// Number of store ports.
    pub store_ports: u32,
    /// L1D capacity in bytes.
    pub l1d_bytes: u32,
    /// L1D associativity.
    pub l1d_assoc: u32,
    /// L1D line size in bytes.
    pub l1d_line: u32,
    /// L1D hit latency (cycles).
    pub l1d_hit_lat: u32,
    /// Miss penalty to the flat backing memory (cycles).
    pub l1d_miss_lat: u32,
}

impl CoreConfig {
    /// The reference configuration used throughout the evaluation.
    pub fn skylake_like() -> CoreConfig {
        CoreConfig {
            width: 4,
            rob_size: 192,
            iq_size: 60,
            phys_regs: 128,
            phys_xmm: 64,
            frontend_depth: 5,
            mispredict_penalty: 12,
            alu_pipes: 2,
            load_ports: 2,
            store_ports: 1,
            l1d_bytes: 32 * 1024,
            l1d_assoc: 8,
            l1d_line: 64,
            l1d_hit_lat: 4,
            l1d_miss_lat: 40,
        }
    }

    /// L1D set count.
    pub fn l1d_sets(&self) -> u32 {
        self.l1d_bytes / (self.l1d_assoc * self.l1d_line)
    }

    /// Total L1D data-array bits — the denominator of the cache ACE
    /// coverage metric.
    pub fn l1d_bits(&self) -> u64 {
        self.l1d_bytes as u64 * 8
    }

    /// Total IRF bits (64 per physical register).
    pub fn irf_bits(&self) -> u64 {
        self.phys_regs as u64 * 64
    }

    /// Total XMM register file bits (128 per physical register).
    pub fn xrf_bits(&self) -> u64 {
        self.phys_xmm as u64 * 128
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics if the cache geometry is not a power-of-two split or the
    /// PRF cannot hold the architectural state.
    pub fn validate(&self) {
        assert!(
            self.phys_regs >= 32,
            "PRF must exceed 16 arch regs + margin"
        );
        assert!(
            self.phys_xmm >= 24,
            "XMM PRF must exceed 16 arch regs + margin"
        );
        assert!(self.l1d_line.is_power_of_two());
        assert!(self.l1d_sets().is_power_of_two());
        assert!(self
            .l1d_bytes
            .is_multiple_of(self.l1d_assoc * self.l1d_line));
        assert!(self.width >= 1 && self.rob_size >= self.width);
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::skylake_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = CoreConfig::default();
        c.validate();
        assert_eq!(c.l1d_sets(), 64);
        assert_eq!(c.l1d_bits(), 262_144);
        assert_eq!(c.irf_bits(), 8_192);
    }

    #[test]
    #[should_panic(expected = "PRF")]
    fn tiny_prf_rejected() {
        let c = CoreConfig {
            phys_regs: 8,
            ..CoreConfig::default()
        };
        c.validate();
    }
}
