/root/repo/target/debug/deps/harpo_isa-d5eaf9e5c362c949.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/container.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/fingerprint.rs crates/isa/src/flags.rs crates/isa/src/form.rs crates/isa/src/fu.rs crates/isa/src/hash.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/semantics.rs crates/isa/src/softfp.rs crates/isa/src/state.rs crates/isa/src/trail.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_isa-d5eaf9e5c362c949.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/container.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/fingerprint.rs crates/isa/src/flags.rs crates/isa/src/form.rs crates/isa/src/fu.rs crates/isa/src/hash.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/semantics.rs crates/isa/src/softfp.rs crates/isa/src/state.rs crates/isa/src/trail.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/container.rs:
crates/isa/src/encode.rs:
crates/isa/src/exec.rs:
crates/isa/src/fingerprint.rs:
crates/isa/src/flags.rs:
crates/isa/src/form.rs:
crates/isa/src/fu.rs:
crates/isa/src/hash.rs:
crates/isa/src/inst.rs:
crates/isa/src/mem.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
crates/isa/src/semantics.rs:
crates/isa/src/softfp.rs:
crates/isa/src/state.rs:
crates/isa/src/trail.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
