/root/repo/target/debug/deps/harpocrates-73645b7b8c326b09.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libharpocrates-73645b7b8c326b09.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
