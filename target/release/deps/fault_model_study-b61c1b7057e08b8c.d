/root/repo/target/release/deps/fault_model_study-b61c1b7057e08b8c.d: crates/bench/src/bin/fault_model_study.rs

/root/repo/target/release/deps/fault_model_study-b61c1b7057e08b8c: crates/bench/src/bin/fault_model_study.rs

crates/bench/src/bin/fault_model_study.rs:
