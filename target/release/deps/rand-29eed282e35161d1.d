/root/repo/target/release/deps/rand-29eed282e35161d1.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-29eed282e35161d1.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-29eed282e35161d1.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
