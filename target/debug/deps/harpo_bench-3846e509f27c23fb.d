/root/repo/target/debug/deps/harpo_bench-3846e509f27c23fb.d: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/debug/deps/harpo_bench-3846e509f27c23fb: crates/bench/src/lib.rs crates/bench/src/diff.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
