#![warn(missing_docs)]

//! # harpo-bench — the experiment harness
//!
//! Shared plumbing for the binaries that regenerate every table and
//! figure of the paper's evaluation (see DESIGN.md §4 for the index).
//! Each binary accepts `--scale paper|reduced` (default `reduced`),
//! `--faults N` and `--threads N`, prints the figure's rows to stdout
//! and writes a CSV next to the workspace under `results/`.

pub mod diff;

use harpo_baselines::{mibench, opendcdiag, SiliFuzz, SiliFuzzConfig};
use harpo_core::{presets, Evaluator, Harpocrates, RunReport, Scale};
use harpo_coverage::TargetStructure;
use harpo_faultsim::{
    build_campaign_trail, measure_detection_with_trail, CampaignConfig, CampaignResult,
};
use harpo_isa::program::Program;
use harpo_museqgen::Generator;
use harpo_telemetry::{JsonlSink, Metrics, Sink, Telemetry, Value};
use harpo_uarch::OooCore;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment scale.
    pub scale: Scale,
    /// Faults per SFI campaign.
    pub faults: usize,
    /// Worker threads (0 = all).
    pub threads: usize,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn parse() -> Cli {
        let mut cli = Cli {
            scale: Scale::Reduced,
            faults: 96,
            threads: 0,
            out_dir: PathBuf::from("results"),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    cli.scale =
                        Scale::parse(&args[i]).unwrap_or_else(|| panic!("bad --scale {}", args[i]));
                }
                "--faults" => {
                    i += 1;
                    cli.faults = args[i].parse().expect("--faults takes a number");
                }
                "--threads" => {
                    i += 1;
                    cli.threads = args[i].parse().expect("--threads takes a number");
                }
                "--out" => {
                    i += 1;
                    cli.out_dir = PathBuf::from(&args[i]);
                }
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        cli
    }

    /// The SFI campaign configuration implied by the CLI.
    pub fn campaign(&self) -> CampaignConfig {
        CampaignConfig {
            n_faults: self.faults,
            threads: self.threads,
            ..CampaignConfig::default()
        }
    }
}

/// A graded test program: one dot/cross pair of Figs. 4–6.
#[derive(Debug, Clone)]
pub struct GradedProgram {
    /// Which framework produced it.
    pub framework: &'static str,
    /// Program name.
    pub name: String,
    /// Hardware coverage (ACE or IBR) for the target structure.
    pub coverage: f64,
    /// SFI fault detection capability.
    pub detection: f64,
    /// Golden run length in cycles.
    pub cycles: u64,
}

/// Simulates once and grades both coverage and detection for one
/// structure, returning the full campaign tally. The golden checkpoint
/// trail is recorded once per program here and handed to the campaign
/// so every replay can seek to its fault and early-exit on
/// reconvergence. Trapping programs score zero on both axes.
pub fn grade_detailed(
    prog: &Program,
    structure: TargetStructure,
    core: &OooCore,
    ccfg: &CampaignConfig,
) -> (f64, CampaignResult, u64) {
    match core.simulate(prog, ccfg.cap) {
        Err(_) => (0.0, CampaignResult::default(), 0),
        Ok(sim) => {
            let coverage = structure.coverage(&sim.trace, core.config());
            let trail = build_campaign_trail(prog, ccfg);
            let det = measure_detection_with_trail(
                prog,
                structure,
                core,
                ccfg,
                &sim.output.signature,
                &sim.trace,
                trail.as_ref(),
            );
            (coverage, det, sim.trace.stats.cycles)
        }
    }
}

/// Simulates once and grades both coverage and detection for one
/// structure. Trapping programs score zero on both axes.
pub fn grade(
    prog: &Program,
    structure: TargetStructure,
    core: &OooCore,
    ccfg: &CampaignConfig,
) -> (f64, f64, u64) {
    let (coverage, det, cycles) = grade_detailed(prog, structure, core, ccfg);
    (coverage, det.detection(), cycles)
}

/// Grades every program of a suite against one structure.
pub fn grade_suite(
    framework: &'static str,
    progs: &[Program],
    structure: TargetStructure,
    core: &OooCore,
    ccfg: &CampaignConfig,
) -> Vec<GradedProgram> {
    progs
        .iter()
        .map(|p| {
            let (coverage, detection, cycles) = grade(p, structure, core, ccfg);
            GradedProgram {
                framework,
                name: p.name.clone(),
                coverage,
                detection,
                cycles,
            }
        })
        .collect()
}

/// Per-binary experiment harness: owns the shared metrics registry and
/// the wall clock, and writes a `<name>.manifest.json` run manifest
/// (config, counters, wall time) beside the CSV on
/// [`Harness::finish`].
#[derive(Debug)]
pub struct Harness {
    name: &'static str,
    cli: Cli,
    metrics: Metrics,
    started: Instant,
}

impl Harness {
    /// Starts the harness clock for one experiment binary.
    pub fn start(name: &'static str, cli: &Cli) -> Harness {
        Harness {
            name,
            cli: cli.clone(),
            metrics: Metrics::new(),
            started: Instant::now(),
        }
    }

    /// The registry every instrumented stage reports into.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// [`grade`] with the campaign tally published into the harness
    /// registry.
    pub fn grade(
        &self,
        prog: &Program,
        structure: TargetStructure,
        core: &OooCore,
        ccfg: &CampaignConfig,
    ) -> (f64, f64, u64) {
        let (coverage, det, cycles) = grade_detailed(prog, structure, core, ccfg);
        det.publish(&self.metrics);
        (coverage, det.detection(), cycles)
    }

    /// [`grade_suite`] with every campaign tally published into the
    /// harness registry.
    pub fn grade_suite(
        &self,
        framework: &'static str,
        progs: &[Program],
        structure: TargetStructure,
        core: &OooCore,
        ccfg: &CampaignConfig,
    ) -> Vec<GradedProgram> {
        progs
            .iter()
            .map(|p| {
                let (coverage, detection, cycles) = self.grade(p, structure, core, ccfg);
                GradedProgram {
                    framework,
                    name: p.name.clone(),
                    coverage,
                    detection,
                    cycles,
                }
            })
            .collect()
    }

    /// [`run_harpocrates`] reporting into the harness registry, with the
    /// run's flight-recorder journal written to
    /// `<out>/<name>_<structure>.journal.jsonl` so `harpo report` can
    /// analyze every experiment's refinement loop after the fact.
    pub fn run_harpocrates(
        &self,
        structure: TargetStructure,
        scale: Scale,
        threads: usize,
    ) -> RunReport {
        let (constraints, mut loop_cfg) = presets::preset(structure, scale);
        loop_cfg.threads = threads;
        let mut h = Harpocrates::new(
            Generator::new(constraints),
            Evaluator::new(OooCore::default(), structure),
            loop_cfg,
        )
        .with_metrics(self.metrics.clone());
        std::fs::create_dir_all(&self.cli.out_dir).expect("create results dir");
        let slug: String = structure
            .label()
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        let journal = self
            .cli
            .out_dir
            .join(format!("{}_{slug}.journal.jsonl", self.name));
        match JsonlSink::create(&journal) {
            Ok(sink) => {
                let sink: std::sync::Arc<dyn Sink> = std::sync::Arc::new(sink);
                h = h.with_telemetry(Telemetry::fanout(vec![sink]));
            }
            Err(e) => eprintln!("warning: journal {}: {e}", journal.display()),
        }
        h.run()
    }

    /// Writes `<name>.manifest.json` into the output directory: the
    /// experiment configuration, wall time, and the counter snapshot.
    pub fn finish(&self) {
        std::fs::create_dir_all(&self.cli.out_dir).expect("create results dir");
        let manifest = Value::Obj(vec![
            ("name".to_string(), self.name.into()),
            ("scale".to_string(), self.cli.scale.label().into()),
            ("faults".to_string(), (self.cli.faults as u64).into()),
            ("threads".to_string(), (self.cli.threads as u64).into()),
            (
                "effective_threads".to_string(),
                (harpo_telemetry::effective_threads(self.cli.threads) as u64).into(),
            ),
            ("campaign_seed".to_string(), self.cli.campaign().seed.into()),
            (
                "wall_seconds".to_string(),
                self.started.elapsed().as_secs_f64().into(),
            ),
            ("counters".to_string(), self.metrics.to_value()),
        ]);
        let path = self
            .cli
            .out_dir
            .join(format!("{}.manifest.json", self.name));
        let mut json = manifest.to_json();
        json.push('\n');
        std::fs::write(&path, json).expect("write manifest");
        println!("↳ wrote {}", path.display());
    }
}

/// Number of SiliFuzz aggregate tests per scale.
fn silifuzz_tests(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 6,
        Scale::Reduced => 4,
    }
}

/// Builds the SiliFuzz baseline test set: several fuzzing sessions, each
/// aggregated into one multi-snapshot test (§III-A1).
pub fn silifuzz_suite(scale: Scale) -> Vec<Program> {
    let (iters, agg) = match scale {
        Scale::Paper => (60_000, 10_000),
        Scale::Reduced => (6_000, 1_000),
    };
    (0..silifuzz_tests(scale))
        .map(|i| {
            let mut s = SiliFuzz::new(SiliFuzzConfig {
                seed: 0x5111 + i as u64,
                iterations: iters,
                ..SiliFuzzConfig::default()
            });
            s.run();
            let mut p = s.aggregate(agg);
            p.name = format!("silifuzz-{i}");
            p
        })
        .collect()
}

/// The three baseline suites as (framework, programs) pairs.
pub fn baseline_suites(scale: Scale) -> Vec<(&'static str, Vec<Program>)> {
    vec![
        ("MiBench", mibench::all()),
        ("OpenDCDiag", opendcdiag::all()),
        ("SiliFuzz", silifuzz_suite(scale)),
    ]
}

/// Runs the Harpocrates loop for a structure at a scale.
pub fn run_harpocrates(structure: TargetStructure, scale: Scale, threads: usize) -> RunReport {
    let (constraints, mut loop_cfg) = presets::preset(structure, scale);
    loop_cfg.threads = threads;
    let h = Harpocrates::new(
        Generator::new(constraints),
        Evaluator::new(OooCore::default(), structure),
        loop_cfg,
    );
    h.run()
}

/// Writes a CSV file, creating the directory as needed.
pub fn write_csv(dir: &Path, file: &str, header: &str, rows: &[String]) {
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(file);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    println!("↳ wrote {}", path.display());
}

/// Pretty percent.
pub fn pct(x: f64) -> String {
    format!("{:6.2}%", x * 100.0)
}

/// Prints a coverage/detection table for one structure and returns CSV
/// rows.
pub fn print_structure_table(structure: TargetStructure, rows: &[GradedProgram]) -> Vec<String> {
    println!("\n=== {} ===", structure.label());
    println!(
        "{:<12} {:<22} {:>9} {:>10} {:>12}",
        "framework", "program", "coverage", "detection", "cycles"
    );
    let mut csv = Vec::new();
    for g in rows {
        println!(
            "{:<12} {:<22} {:>9} {:>10} {:>12}",
            g.framework,
            g.name,
            pct(g.coverage),
            pct(g.detection),
            g.cycles
        );
        csv.push(format!(
            "{},{},{},{:.6},{:.6},{}",
            structure.label(),
            g.framework,
            g.name,
            g.coverage,
            g.detection,
            g.cycles
        ));
    }
    for fw in ["MiBench", "OpenDCDiag", "SiliFuzz", "Harpocrates"] {
        let of_fw: Vec<&GradedProgram> = rows.iter().filter(|g| g.framework == fw).collect();
        if of_fw.is_empty() {
            continue;
        }
        let max = of_fw.iter().map(|g| g.detection).fold(0.0, f64::max);
        let avg = of_fw.iter().map(|g| g.detection).sum::<f64>() / of_fw.len() as f64;
        println!("  {fw}: max detection {} avg {}", pct(max), pct(avg));
    }
    csv
}

/// The standard CSV header for Figs. 4–6 and 11.
pub const GRADE_CSV_HEADER: &str = "structure,framework,program,coverage,detection,cycles";
