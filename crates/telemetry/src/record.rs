//! The journal record: one structured event.

use crate::json::{write_string, Value};

/// The journal schema version, stamped into every JSONL line as `"v"`.
///
/// Offline consumers (`harpo report`) refuse journals written by a newer
/// schema instead of mis-parsing them. Records without a `"v"` field are
/// version 1 (the pre-versioning journals of early runs). Bump this when
/// a record kind changes meaning or drops a field — additive fields do
/// not need a bump. The bump protocol is documented in DESIGN.md and
/// docs/observability.md.
pub const SCHEMA_VERSION: u64 = 3;

/// One journal event: a kind tag plus ordered key→value fields.
///
/// Built fluently and cheaply — construction is skipped entirely when no
/// sink is attached (see [`crate::Telemetry::emit`]):
///
/// ```
/// use harpo_telemetry::Record;
/// let r = Record::new("iteration").field("iter", 3u64).field("best", 0.25);
/// assert_eq!(r.to_json(), r#"{"kind":"iteration","v":3,"iter":3,"best":0.25}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The event kind (`"iteration"`, `"summary"`, `"campaign"`, ...).
    pub kind: &'static str,
    /// The fields, in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Record {
    /// Starts a record of the given kind.
    pub fn new(kind: &'static str) -> Record {
        Record {
            kind,
            fields: Vec::new(),
        }
    }

    /// Appends a field.
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Record {
        self.fields.push((key, value.into()));
        self
    }

    /// Looks up a field value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders as one compact JSON object with `"kind"` first and the
    /// schema version second — the journal's JSONL line format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"kind\":");
        write_string(&mut out, self.kind);
        out.push_str(",\"v\":");
        out.push_str(&SCHEMA_VERSION.to_string());
        for (k, v) in &self.fields {
            out.push(',');
            write_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_json());
        }
        out.push('}');
        out
    }

    /// Renders as a human-readable `kind key=value ...` line — the
    /// stderr sink format.
    pub fn to_human(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 12);
        out.push_str(self.kind);
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            match v {
                Value::Str(s) => out.push_str(s),
                other => out.push_str(&other.to_json()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn json_line_round_trips() {
        let r = Record::new("iteration")
            .field("iter", 7u64)
            .field("best", 0.5)
            .field("name", "int-mul")
            .field("ok", true);
        let v = parse(&r.to_json()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("iteration"));
        assert_eq!(v.get("v").unwrap().as_u64(), Some(SCHEMA_VERSION));
        assert_eq!(v.get("iter").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("best").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("name").unwrap().as_str(), Some("int-mul"));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn human_line_is_flat() {
        let r = Record::new("summary")
            .field("coverage", 0.25)
            .field("tag", "x");
        assert_eq!(r.to_human(), "summary coverage=0.25 tag=x");
    }

    #[test]
    fn get_finds_fields() {
        let r = Record::new("k").field("a", 1u64);
        assert_eq!(r.get("a").unwrap().as_u64(), Some(1));
        assert!(r.get("b").is_none());
    }
}
