/root/repo/target/release/deps/harpo_coverage-b2ea7132cabbcda7.d: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

/root/repo/target/release/deps/harpo_coverage-b2ea7132cabbcda7: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

crates/coverage/src/lib.rs:
crates/coverage/src/ace.rs:
crates/coverage/src/ibr.rs:
crates/coverage/src/liveness.rs:
crates/coverage/src/objective.rs:
