/root/repo/target/debug/deps/rate_comparison-d009b7f30bd4ee98.d: crates/bench/src/bin/rate_comparison.rs Cargo.toml

/root/repo/target/debug/deps/librate_comparison-d009b7f30bd4ee98.rmeta: crates/bench/src/bin/rate_comparison.rs Cargo.toml

crates/bench/src/bin/rate_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
