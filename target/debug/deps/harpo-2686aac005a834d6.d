/root/repo/target/debug/deps/harpo-2686aac005a834d6.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/debug/deps/harpo-2686aac005a834d6: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
