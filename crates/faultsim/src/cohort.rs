//! Bit-parallel outcome cohorts: demote activated gate faults whose
//! corruption provably never reaches architectural state.
//!
//! The packed activation screen ([`crate::gate::screen_fault_spans`])
//! proves *inactive* faults Masked without a replay, but every
//! *activated* fault still pays a full scalar replay — even when the
//! corrupted output lands in a dead register whose value the program
//! never consumes. This module closes that gap with a purely static,
//! fully conservative liveness analysis over the golden trace:
//!
//! * a dynamic instruction's **result is dead** when it writes no
//!   memory, is no branch, writes no live flags, and every destination
//!   register instance it produces is never read and not architecturally
//!   live at program end (the output signature hashes live registers
//!   *and* the packed flags, so both feed the analysis);
//! * an adder pass's **carry-out is dead** unless the instruction
//!   writes live flags, or the instruction issues multiple graded
//!   passes (a later pass could chain the carry back into a live
//!   result).
//!
//! A fault is **demoted** — graded Masked with no replay — only when
//! *every* activating pass lands on a dyn whose affected outputs are
//! all dead. Any live corruption, value or carry, sends the fault to
//! the scalar replay unchanged. Demotion is therefore sound by
//! construction: it only ever skips replays whose outcome is forced.
//!
//! Soundness relies on over-approximating liveness, never under: an
//! unknown dyn (an FU op past the recorded dyn stream) is treated as
//! fully live, flags are live at program end, and any memory access —
//! load or store — marks the result live (a corrupted address corrupts
//! the access even when the loaded value is dead).

use crate::gate::{fu_kind_of, ActivationSpan};
use harpo_gates::{screen_activation_masks, GateFault, GradedUnit, UnitEvaluators};
use harpo_isa::hash::MixMap;
use harpo_uarch::ExecutionTrace;

/// Liveness of one graded-unit pass's outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fate {
    /// The pass's result value can reach architectural state.
    pub value_live: bool,
    /// The pass's carry-out can reach architectural state (adder only;
    /// always implied live for multi-pass instructions whose value is
    /// live, because a later pass can chain the carry into the result).
    pub cout_live: bool,
}

impl Fate {
    /// The conservative default: everything reaches state.
    const LIVE: Fate = Fate {
        value_live: true,
        cout_live: true,
    };

    /// Both outputs dead: corruption confined to this pass dies here.
    pub fn dead(&self) -> bool {
        !self.value_live && !self.cout_live
    }
}

/// Per-dyn output liveness for the passes of one graded unit, derived
/// once per (trace, unit) and shared across all fault cohorts. Stored
/// dense (one slot per recorded dyn) — the analysis touches every dyn
/// anyway, and campaigns query it on the screening hot path.
pub struct DynFates {
    fates: Vec<Fate>,
}

impl DynFates {
    /// Analyzes the golden trace for the unit feeding `unit`'s passes.
    pub fn analyze(trace: &ExecutionTrace, unit: GradedUnit) -> DynFates {
        let n = trace.dyn_records.len();
        // Reverse flags-liveness scan. Flags are live at program end
        // (the output signature packs them), live before any reader,
        // dead before a writer that nobody later reads.
        let mut flags_live_after = vec![true; n];
        let mut live = true;
        for d in (0..n).rev() {
            flags_live_after[d] = live;
            let r = &trace.dyn_records[d];
            if r.reads_flags {
                live = true;
            } else if r.writes_flags {
                live = false;
            }
        }
        // Dyns producing at least one consumed destination instance
        // (read later, or architecturally live at end) — GPR or XMM.
        let mut dest_live = vec![false; n];
        for i in &trace.reg_instances {
            if i.writer != u64::MAX && (i.reads_len > 0 || i.live_at_end) {
                if let Some(slot) = dest_live.get_mut(i.writer as usize) {
                    *slot = true;
                }
            }
        }
        for i in &trace.xmm_instances {
            if i.writer != u64::MAX && (i.reads_len > 0 || i.live_at_end) {
                if let Some(slot) = dest_live.get_mut(i.writer as usize) {
                    *slot = true;
                }
            }
        }
        // Graded passes per dyn, across every unit: a multi-pass
        // instruction can chain one pass's carry into another's result.
        let mut passes = vec![0u32; n];
        for op in &trace.fu_ops {
            if let Some(slot) = passes.get_mut(op.dyn_idx as usize) {
                *slot += 1;
            }
        }
        // Non-pass dyns keep the conservative default; `fate` is only
        // ever asked about the unit's own passes.
        let mut fates = vec![Fate::LIVE; n];
        for op in trace.fu_ops_of(fu_kind_of(unit)) {
            let d = op.dyn_idx as usize;
            if d >= n {
                continue; // unknown dyn: assume live
            }
            let r = &trace.dyn_records[d];
            let flags = r.writes_flags && flags_live_after[d];
            let value_live = r.mem_size > 0 || r.branch != 0 || flags || dest_live[d];
            let multipass = passes[d] > 1;
            fates[d] = Fate {
                value_live,
                cout_live: flags || (multipass && value_live),
            };
        }
        DynFates { fates }
    }

    /// The fate of the unit's pass at `dyn_idx`; conservative (fully
    /// live) for dyns the analysis never saw.
    pub fn fate(&self, dyn_idx: u64) -> Fate {
        self.fates
            .get(dyn_idx as usize)
            .copied()
            .unwrap_or(Fate::LIVE)
    }
}

/// The cohort screen's verdict on one candidate fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GateVerdict {
    /// Never activated: Masked by the plain activation screen.
    #[default]
    Inactive,
    /// Activated, but every activating pass's affected outputs are
    /// dead: Masked without a replay.
    Demoted(ActivationSpan),
    /// Activated with at least one live corruption: needs the scalar
    /// propagation replay, bounded by the span.
    Replay(ActivationSpan),
}

/// Screens a cohort of ≤ 64 candidate faults in one pass over the
/// golden operand stream, grading each [`Inactive`](GateVerdict), or
/// [`Demoted`](GateVerdict) / [`Replay`](GateVerdict) with its
/// activation span. One netlist evaluation per unique operand triple;
/// the per-triple `(activated, value)` mask pair is memoised. `fates`
/// is the [`DynFates::analyze`] result for the same `(trace, unit)`,
/// built once by the caller and shared across every 64-fault cohort.
pub fn screen_fault_cohorts(
    trace: &ExecutionTrace,
    unit: GradedUnit,
    faults: &[GateFault],
    ev: &mut UnitEvaluators,
    fates: &DynFates,
) -> Vec<GateVerdict> {
    assert!(faults.len() <= 64);
    let n = faults.len();
    let pairs: Vec<(u32, bool)> = faults.iter().map(|f| (f.gate, f.stuck_one)).collect();
    let mut memo: MixMap<(u64, u64, bool), (u64, u64)> = MixMap::default();
    // Flat min/max span tracking (`first_dyn == u64::MAX` ⇒ never
    // activated): the update loop runs once per (op, activated fault),
    // so it stays two compares with no enum discriminant.
    let mut first_dyn = vec![u64::MAX; n];
    let mut first_cycle = vec![0u64; n];
    let mut last_dyn = vec![0u64; n];
    let mut condemned = 0u64;
    for op in trace.fu_ops_of(fu_kind_of(unit)) {
        let &mut (act, value) = memo
            .entry((op.a, op.b, op.cin))
            .or_insert_with(|| screen_activation_masks(unit, ev, op.a, op.b, op.cin, &pairs));
        if act == 0 {
            continue;
        }
        let fate = fates.fate(op.dyn_idx);
        if fate.value_live {
            condemned |= value;
        }
        if fate.cout_live {
            // Activated without a value change ⇒ carry-out-only
            // corruption (possible only on the adder, whose screen
            // separates the sum from the carry).
            condemned |= act & !value;
        }
        let mut mask = act;
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            // FU ops are recorded at issue, so the stream is not
            // strictly dyn-ordered; track min/max.
            if op.dyn_idx < first_dyn[i] {
                first_dyn[i] = op.dyn_idx;
                first_cycle[i] = op.cycle;
            }
            if op.dyn_idx > last_dyn[i] {
                last_dyn[i] = op.dyn_idx;
            }
        }
    }
    (0..n)
        .map(|i| {
            if first_dyn[i] == u64::MAX {
                return GateVerdict::Inactive;
            }
            let span = ActivationSpan {
                first_dyn: first_dyn[i],
                last_dyn: last_dyn[i],
                first_cycle: first_cycle[i],
            };
            if condemned >> i & 1 != 0 {
                GateVerdict::Replay(span)
            } else {
                GateVerdict::Demoted(span)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{replay_gate_permanent, screen_fault_spans};
    use crate::outcome::FaultOutcome;
    use harpo_isa::asm::Asm;
    use harpo_isa::form::Mnemonic;
    use harpo_isa::program::Program;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::B64;
    use harpo_isa::state::Signature;
    use harpo_uarch::OooCore;

    fn golden_of(p: &Program) -> (Signature, ExecutionTrace) {
        let r = OooCore::default().simulate(p, 1_000_000).unwrap();
        (r.output.signature, r.trace)
    }

    fn adder_faults() -> Vec<GateFault> {
        (0..64u32)
            .map(|g| GateFault {
                unit: GradedUnit::IntAdder,
                gate: g * 7 % GradedUnit::IntAdder.gate_count() as u32,
                stuck_one: g % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn live_chain_never_demotes() {
        // Every add feeds the next and the accumulators are in the
        // output signature: all activated faults must replay.
        let mut a = Asm::new("live");
        a.mov_ri64(Rax, 0x0123_4567_89AB_CDEF);
        for _ in 0..16 {
            a.add_rr(B64, Rcx, Rax);
            a.add_rr(B64, Rax, Rcx);
        }
        a.halt();
        let p = a.finish().unwrap();
        let (_, trace) = golden_of(&p);
        let faults = adder_faults();
        let mut ev = UnitEvaluators::new();
        let fates = DynFates::analyze(&trace, GradedUnit::IntAdder);
        let verdicts = screen_fault_cohorts(&trace, GradedUnit::IntAdder, &faults, &mut ev, &fates);
        let spans = screen_fault_spans(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        let mut some_replay = false;
        for (i, v) in verdicts.iter().enumerate() {
            match (v, spans[i]) {
                (GateVerdict::Inactive, s) => assert!(s.is_none(), "fault {i}"),
                (GateVerdict::Replay(vs), Some(s)) => {
                    assert_eq!(*vs, s, "fault {i}: span must match the span screen");
                    some_replay = true;
                }
                (v, s) => panic!("fault {i}: {v:?} vs span {s:?}"),
            }
        }
        assert!(some_replay, "wide operands activate some faults");
    }

    #[test]
    fn dead_results_demote_and_are_sound() {
        // Every add's destination is overwritten by a `mov` (which
        // writes without reading), its flags die under the next flag
        // writer, and the final flags come from an ungraded xor: no
        // adder output reaches the signature, so every activated fault
        // demotes — and the scalar replay agrees each one is Masked.
        let mut a = Asm::new("dead");
        a.mov_ri64(Rax, 0xFFFF_FFFF_0F0F_5A5A);
        a.mov_ri64(Rbx, 0x0123_4567_89AB_CDEF);
        for _ in 0..8 {
            a.mov_ri64(Rcx, 0x00FF_00FF_00FF_00FF);
            a.add_rr(B64, Rcx, Rax);
            a.mov_ri64(Rcx, 0xAAAA_5555_AAAA_5555);
            a.add_rr(B64, Rcx, Rbx);
        }
        a.mov_ri64(Rcx, 7); // kill the last add's value
        a.op_rr(Mnemonic::Xor, B64, Rdx, Rax); // final flags, adder-free
        a.halt();
        let p = a.finish().unwrap();
        let (golden, trace) = golden_of(&p);
        let faults = adder_faults();
        let mut ev = UnitEvaluators::new();
        let fates = DynFates::analyze(&trace, GradedUnit::IntAdder);
        let verdicts = screen_fault_cohorts(&trace, GradedUnit::IntAdder, &faults, &mut ev, &fates);
        let mut some_demoted = false;
        for (i, v) in verdicts.iter().enumerate() {
            match v {
                GateVerdict::Replay(_) => panic!("fault {i}: no adder output is live"),
                GateVerdict::Demoted(_) => {
                    some_demoted = true;
                    let out = replay_gate_permanent(&p, faults[i], &golden, 1_000_000);
                    assert_eq!(out, FaultOutcome::Masked, "fault {i}: demotion unsound");
                }
                GateVerdict::Inactive => {}
            }
        }
        assert!(some_demoted, "wide operands activate some faults");
    }

    #[test]
    fn live_flags_block_demotion() {
        // Identical dead-value shape, but no trailing xor: the last
        // add's flags survive to the signature. Every add passes the
        // same operand triple, so any activated fault activates the
        // final add too — live flag corruption forces a replay for all
        // of them.
        let mut a = Asm::new("flags");
        a.mov_ri64(Rax, 0xFFFF_FFFF_0F0F_5A5A);
        for _ in 0..8 {
            a.mov_ri64(Rcx, 0x00FF_00FF_00FF_00FF);
            a.add_rr(B64, Rcx, Rax);
        }
        a.mov_ri64(Rcx, 7);
        a.halt();
        let p = a.finish().unwrap();
        let (_, trace) = golden_of(&p);
        let faults = adder_faults();
        let mut ev = UnitEvaluators::new();
        let fates = DynFates::analyze(&trace, GradedUnit::IntAdder);
        let verdicts = screen_fault_cohorts(&trace, GradedUnit::IntAdder, &faults, &mut ev, &fates);
        let mut some_replay = false;
        for (i, v) in verdicts.iter().enumerate() {
            assert!(
                !matches!(v, GateVerdict::Demoted(_)),
                "fault {i} demoted despite live final flags"
            );
            some_replay |= matches!(v, GateVerdict::Replay(_));
        }
        assert!(some_replay, "wide operands activate some faults");
    }

    #[test]
    fn verdict_default_is_inactive() {
        assert_eq!(GateVerdict::default(), GateVerdict::Inactive);
    }
}
