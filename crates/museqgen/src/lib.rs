#![warn(missing_docs)]

//! # harpo-museqgen — the Mutator and Sequence Generator
//!
//! The MuSeqGen framework of the paper (§V): constrained-random,
//! ISA-aware generation of HX86 test programs plus the mutation engine
//! that powers the Harpocrates refinement loop. Every emitted program is
//! valid by construction — implicit operands, stack discipline, memory
//! bounds and determinism are all encoded as generation constraints
//! rather than discovered by trial execution (the key contrast with the
//! byte-level SiliFuzz baseline).

pub mod constraints;
pub mod generator;
pub mod mutate;

pub use constraints::{GenConstraints, MemPlan, RegAllocPolicy, BASE_POOL, WRITABLE_POOL};
pub use generator::{access_size, Generator, OperandCtx};
pub use mutate::{MutationOp, Mutator};
