/root/repo/target/release/deps/seventh_structure-09da70d394495937.d: crates/bench/src/bin/seventh_structure.rs

/root/repo/target/release/deps/seventh_structure-09da70d394495937: crates/bench/src/bin/seventh_structure.rs

crates/bench/src/bin/seventh_structure.rs:
