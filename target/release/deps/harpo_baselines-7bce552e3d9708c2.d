/root/repo/target/release/deps/harpo_baselines-7bce552e3d9708c2.d: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/release/deps/harpo_baselines-7bce552e3d9708c2: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

crates/baselines/src/lib.rs:
crates/baselines/src/kern.rs:
crates/baselines/src/mibench.rs:
crates/baselines/src/opendcdiag.rs:
crates/baselines/src/silifuzz.rs:
