//! [`FuProvider`] implementations backed by the gate-level circuits.
//!
//! * [`NetlistFu`] routes **every** graded operation through the netlists
//!   (used by equivalence tests and as the authoritative semantics);
//! * [`FaultyFu`] computes natively except on the single faulted unit,
//!   where the stuck-at netlist is evaluated — the fast path used by
//!   fault-injection replay, since most dynamic instructions do not touch
//!   the faulted structure.

use crate::adder::{int_adder, AdderCircuit};
use crate::eval::{Evaluator, FaultSet};
use crate::fpadd::{fp_adder, FpAddCircuit};
use crate::fpmul::{fp_multiplier, FpMulCircuit};
use crate::multiplier::{int_multiplier, MulCircuit};
use harpo_isa::fu::{FuProvider, NativeFu};
use serde::{Deserialize, Serialize};

/// The four graded functional units of the paper's evaluation (§III-B2,
/// structures c–f; the bit-array structures a–b are handled by the array
/// fault injector, not by netlists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GradedUnit {
    /// The 64-bit integer adder.
    IntAdder,
    /// The 32×32 integer multiplier array.
    IntMultiplier,
    /// The single-precision SSE FP adder.
    FpAdder,
    /// The single-precision SSE FP multiplier.
    FpMultiplier,
}

impl GradedUnit {
    /// All four units.
    pub const ALL: [GradedUnit; 4] = [
        GradedUnit::IntAdder,
        GradedUnit::IntMultiplier,
        GradedUnit::FpAdder,
        GradedUnit::FpMultiplier,
    ];

    /// Number of gates in this unit's netlist (the fault population).
    pub fn gate_count(self) -> usize {
        match self {
            GradedUnit::IntAdder => int_adder().netlist().gate_count(),
            GradedUnit::IntMultiplier => int_multiplier().netlist().gate_count(),
            GradedUnit::FpAdder => fp_adder().netlist().gate_count(),
            GradedUnit::FpMultiplier => fp_multiplier().netlist().gate_count(),
        }
    }

    /// Short display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            GradedUnit::IntAdder => "Integer Adder",
            GradedUnit::IntMultiplier => "Integer Multiplier",
            GradedUnit::FpAdder => "SSE FP Adder",
            GradedUnit::FpMultiplier => "SSE FP Multiplier",
        }
    }
}

/// A stuck-at fault on one gate of one graded unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GateFault {
    /// Which unit is defective.
    pub unit: GradedUnit,
    /// Gate index within the unit's netlist.
    pub gate: u32,
    /// `true` = stuck-at-1, `false` = stuck-at-0.
    pub stuck_one: bool,
}

/// Scratch evaluators for all four circuits (one per thread).
#[derive(Debug)]
pub struct UnitEvaluators {
    adder: Evaluator,
    mul: Evaluator,
    fpadd: Evaluator,
    fpmul: Evaluator,
}

impl UnitEvaluators {
    /// Allocates evaluators sized for the shared circuits.
    pub fn new() -> UnitEvaluators {
        UnitEvaluators {
            adder: Evaluator::new(int_adder().netlist()),
            mul: Evaluator::new(int_multiplier().netlist()),
            fpadd: Evaluator::new(fp_adder().netlist()),
            fpmul: Evaluator::new(fp_multiplier().netlist()),
        }
    }
}

impl Default for UnitEvaluators {
    fn default() -> Self {
        UnitEvaluators::new()
    }
}

/// Routes all graded operations through fault-free netlists. Slow;
/// exists to prove `NativeFu` ≡ netlists (see tests) and as a debugging
/// aid.
#[derive(Debug, Default)]
pub struct NetlistFu {
    ev: UnitEvaluators,
}

impl NetlistFu {
    /// Creates the provider.
    pub fn new() -> NetlistFu {
        NetlistFu::default()
    }
}

impl FuProvider for NetlistFu {
    fn int_add(&mut self, a: u64, b: u64, cin: bool) -> (u64, bool) {
        int_adder().eval(&mut self.ev.adder, a, b, cin, &FaultSet::none())
    }

    fn int_mul32(&mut self, a: u32, b: u32) -> u64 {
        int_multiplier().eval(&mut self.ev.mul, a, b, &FaultSet::none())
    }

    fn fp_add(&mut self, a: u32, b: u32) -> u32 {
        fp_adder().eval(&mut self.ev.fpadd, a, b, &FaultSet::none())
    }

    fn fp_mul(&mut self, a: u32, b: u32) -> u32 {
        fp_multiplier().eval(&mut self.ev.fpmul, a, b, &FaultSet::none())
    }
}

/// Native arithmetic everywhere except the single faulted unit, which is
/// evaluated on its netlist with the stuck-at fault applied. `active`
/// can be toggled to model intermittent faults (outside the burst the
/// unit behaves fault-free).
#[derive(Debug)]
pub struct FaultyFu {
    fault: GateFault,
    faults: FaultSet,
    /// Whether the fault is currently asserted (intermittent bursts
    /// toggle this; permanent faults leave it `true`).
    pub active: bool,
    native: NativeFu,
    ev: Evaluator,
}

impl FaultyFu {
    /// Creates a provider with the given permanent fault asserted.
    pub fn new(fault: GateFault) -> FaultyFu {
        let net = match fault.unit {
            GradedUnit::IntAdder => int_adder().netlist(),
            GradedUnit::IntMultiplier => int_multiplier().netlist(),
            GradedUnit::FpAdder => fp_adder().netlist(),
            GradedUnit::FpMultiplier => fp_multiplier().netlist(),
        };
        assert!(
            (fault.gate as usize) < net.gate_count(),
            "gate {} outside {} ({} gates)",
            fault.gate,
            net.name(),
            net.gate_count()
        );
        FaultyFu {
            fault,
            faults: FaultSet::single(fault.gate, fault.stuck_one),
            active: true,
            native: NativeFu,
            ev: Evaluator::new(net),
        }
    }

    /// The injected fault.
    pub fn fault(&self) -> GateFault {
        self.fault
    }
}

impl FuProvider for FaultyFu {
    fn int_add(&mut self, a: u64, b: u64, cin: bool) -> (u64, bool) {
        if self.active && self.fault.unit == GradedUnit::IntAdder {
            int_adder().eval(&mut self.ev, a, b, cin, &self.faults)
        } else {
            self.native.int_add(a, b, cin)
        }
    }

    fn int_mul32(&mut self, a: u32, b: u32) -> u64 {
        if self.active && self.fault.unit == GradedUnit::IntMultiplier {
            int_multiplier().eval(&mut self.ev, a, b, &self.faults)
        } else {
            self.native.int_mul32(a, b)
        }
    }

    fn fp_add(&mut self, a: u32, b: u32) -> u32 {
        if self.active && self.fault.unit == GradedUnit::FpAdder {
            fp_adder().eval(&mut self.ev, a, b, &self.faults)
        } else {
            self.native.fp_add(a, b)
        }
    }

    fn fp_mul(&mut self, a: u32, b: u32) -> u32 {
        if self.active && self.fault.unit == GradedUnit::FpMultiplier {
            fp_multiplier().eval(&mut self.ev, a, b, &self.faults)
        } else {
            self.native.fp_mul(a, b)
        }
    }
}

/// Packed activation screen: evaluates one operand pair against up to 64
/// candidate faults of `unit` in a single netlist pass, returning for each
/// fault whether its output differs from the fault-free result.
///
/// This is the 64× speed-up that makes statistical gate-fault campaigns
/// tractable (DESIGN.md §6).
pub fn screen_activation(
    unit: GradedUnit,
    ev: &mut UnitEvaluators,
    a: u64,
    b: u64,
    cin: bool,
    faults: &[(u32, bool)],
    activated: &mut [bool],
) {
    assert!(faults.len() <= 64 && activated.len() >= faults.len());
    let fs = FaultSet::lanes(faults);
    let mut lanes = [0u64; 64];
    match unit {
        GradedUnit::IntAdder => {
            let c: &AdderCircuit = int_adder();
            let golden = c.eval(&mut ev.adder, a, b, cin, &FaultSet::none());
            let mut out = [(0u64, false); 64];
            c.eval_lanes(&mut ev.adder, a, b, cin, &fs, &mut out);
            for i in 0..faults.len() {
                activated[i] = out[i] != golden;
            }
        }
        GradedUnit::IntMultiplier => {
            let c: &MulCircuit = int_multiplier();
            let golden = c.eval(&mut ev.mul, a as u32, b as u32, &FaultSet::none());
            c.eval_lanes(&mut ev.mul, a as u32, b as u32, &fs, &mut lanes);
            for i in 0..faults.len() {
                activated[i] = lanes[i] != golden;
            }
        }
        GradedUnit::FpAdder => {
            let c: &FpAddCircuit = fp_adder();
            let golden = c.eval(&mut ev.fpadd, a as u32, b as u32, &FaultSet::none());
            c.eval_lanes(&mut ev.fpadd, a as u32, b as u32, &fs, &mut lanes);
            for i in 0..faults.len() {
                activated[i] = lanes[i] as u32 != golden;
            }
        }
        GradedUnit::FpMultiplier => {
            let c: &FpMulCircuit = fp_multiplier();
            let golden = c.eval(&mut ev.fpmul, a as u32, b as u32, &FaultSet::none());
            c.eval_lanes(&mut ev.fpmul, a as u32, b as u32, &fs, &mut lanes);
            for i in 0..faults.len() {
                activated[i] = lanes[i] as u32 != golden;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_fu_equals_native_fu() {
        let mut net = NetlistFu::new();
        let mut nat = NativeFu;
        let mut s = 7u64;
        for _ in 0..100 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = s;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = s;
            assert_eq!(net.int_add(a, b, s & 1 == 1), nat.int_add(a, b, s & 1 == 1));
            assert_eq!(
                net.int_mul32(a as u32, b as u32),
                nat.int_mul32(a as u32, b as u32)
            );
            assert_eq!(
                net.fp_add(a as u32, b as u32),
                nat.fp_add(a as u32, b as u32)
            );
            assert_eq!(
                net.fp_mul(a as u32, b as u32),
                nat.fp_mul(a as u32, b as u32)
            );
        }
    }

    #[test]
    fn faulty_fu_only_affects_its_unit() {
        let mut fu = FaultyFu::new(GateFault {
            unit: GradedUnit::IntMultiplier,
            gate: 100,
            stuck_one: true,
        });
        let mut nat = NativeFu;
        // Non-faulted units behave natively.
        assert_eq!(fu.int_add(5, 7, false), nat.int_add(5, 7, false));
        assert_eq!(
            fu.fp_add(0x3F80_0000, 0x4000_0000),
            nat.fp_add(0x3F80_0000, 0x4000_0000)
        );
        // Deactivated fault behaves natively too.
        fu.active = false;
        assert_eq!(fu.int_mul32(1234, 5678), nat.int_mul32(1234, 5678));
    }

    #[test]
    fn screen_matches_single_fault_eval() {
        let mut ev = UnitEvaluators::new();
        let n = int_adder().netlist().gate_count() as u32;
        let faults: Vec<(u32, bool)> = (0..48u32).map(|i| (i * 11 % n, i % 3 == 0)).collect();
        let mut act = vec![false; faults.len()];
        screen_activation(
            GradedUnit::IntAdder,
            &mut ev,
            0xFF00,
            0x00FF,
            false,
            &faults,
            &mut act,
        );
        for (i, &(g, s1)) in faults.iter().enumerate() {
            let mut fu = FaultyFu::new(GateFault {
                unit: GradedUnit::IntAdder,
                gate: g,
                stuck_one: s1,
            });
            let got = fu.int_add(0xFF00, 0x00FF, false);
            let golden = NativeFu.int_add(0xFF00, 0x00FF, false);
            assert_eq!(act[i], got != golden, "fault ({g},{s1})");
        }
    }

    #[test]
    fn all_units_report_gate_counts() {
        for u in GradedUnit::ALL {
            assert!(u.gate_count() > 100, "{} too small", u.label());
        }
    }
}
