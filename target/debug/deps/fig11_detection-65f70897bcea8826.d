/root/repo/target/debug/deps/fig11_detection-65f70897bcea8826.d: crates/bench/src/bin/fig11_detection.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_detection-65f70897bcea8826.rmeta: crates/bench/src/bin/fig11_detection.rs Cargo.toml

crates/bench/src/bin/fig11_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
