/root/repo/target/debug/deps/harpo_uarch-ff37dbb870177770.d: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_uarch-ff37dbb870177770.rmeta: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs Cargo.toml

crates/uarch/src/lib.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/config.rs:
crates/uarch/src/core.rs:
crates/uarch/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
