//! Fault descriptors and statistical sampling (paper §III-C).
//!
//! Bit-array structures use a transient model — a uniformly random
//! `(bit, cycle)` single flip. Functional units use a permanent model —
//! a uniformly sampled gate with a stuck-at-0/1 polarity. Intermittent
//! faults assert a gate fault only within a dynamic-instruction burst.

use harpo_gates::{GateFault, GradedUnit};
use harpo_uarch::CoreConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A transient single-bit flip in the physical integer register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IrfFault {
    /// Physical register hit.
    pub preg: u16,
    /// Bit position (0–63).
    pub bit: u8,
    /// Cycle of the flip.
    pub cycle: u64,
}

/// A transient single-bit flip in the physical XMM register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct XrfFault {
    /// Physical XMM register hit.
    pub preg: u16,
    /// Bit position (0–127).
    pub bit: u8,
    /// Cycle of the flip.
    pub cycle: u64,
}

/// A transient single-bit flip in the L1D data array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct L1dFault {
    /// Set index.
    pub set: u32,
    /// Way index.
    pub way: u32,
    /// Bit within the line's data (0 .. line_bytes×8).
    pub bit: u16,
    /// Cycle of the flip.
    pub cycle: u64,
}

/// Any injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSpec {
    /// Transient IRF bit flip.
    Irf(IrfFault),
    /// Transient L1D bit flip.
    L1d(L1dFault),
    /// Permanent stuck-at gate fault in a functional unit.
    GatePermanent(GateFault),
    /// Intermittent stuck-at gate fault asserted only for dynamic
    /// instructions in `[from_dyn, to_dyn)`.
    GateIntermittent {
        /// The underlying stuck-at fault.
        fault: GateFault,
        /// First dynamic instruction of the burst.
        from_dyn: u64,
        /// One past the last dynamic instruction of the burst.
        to_dyn: u64,
    },
}

/// Samples `n` uniform IRF transients for a run of `cycles` cycles.
pub fn sample_irf_faults(
    rng: &mut impl Rng,
    cfg: &CoreConfig,
    cycles: u64,
    n: usize,
) -> Vec<IrfFault> {
    (0..n)
        .map(|_| IrfFault {
            preg: rng.random_range(0..cfg.phys_regs as u16),
            bit: rng.random_range(0..64),
            cycle: rng.random_range(0..cycles.max(1)),
        })
        .collect()
}

/// Samples `n` uniform XMM-register-file transients.
pub fn sample_xrf_faults(
    rng: &mut impl Rng,
    cfg: &CoreConfig,
    cycles: u64,
    n: usize,
) -> Vec<XrfFault> {
    (0..n)
        .map(|_| XrfFault {
            preg: rng.random_range(0..cfg.phys_xmm as u16),
            bit: rng.random_range(0..128),
            cycle: rng.random_range(0..cycles.max(1)),
        })
        .collect()
}

/// Samples `n` uniform L1D transients.
pub fn sample_l1d_faults(
    rng: &mut impl Rng,
    cfg: &CoreConfig,
    cycles: u64,
    n: usize,
) -> Vec<L1dFault> {
    (0..n)
        .map(|_| L1dFault {
            set: rng.random_range(0..cfg.l1d_sets()),
            way: rng.random_range(0..cfg.l1d_assoc),
            bit: rng.random_range(0..(cfg.l1d_line * 8) as u16),
            cycle: rng.random_range(0..cycles.max(1)),
        })
        .collect()
}

/// Samples `n` uniform stuck-at gate faults in a unit (gate and polarity
/// both uniform, as in the paper's SFI setup).
pub fn sample_gate_faults(rng: &mut impl Rng, unit: GradedUnit, n: usize) -> Vec<GateFault> {
    let gates = unit.gate_count() as u32;
    (0..n)
        .map(|_| GateFault {
            unit,
            gate: rng.random_range(0..gates),
            stuck_one: rng.random_bool(0.5),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = CoreConfig::default();
        for f in sample_irf_faults(&mut rng, &cfg, 1000, 200) {
            assert!((f.preg as u32) < cfg.phys_regs);
            assert!(f.bit < 64);
            assert!(f.cycle < 1000);
        }
        for f in sample_l1d_faults(&mut rng, &cfg, 1000, 200) {
            assert!(f.set < cfg.l1d_sets());
            assert!(f.way < cfg.l1d_assoc);
            assert!((f.bit as u32) < cfg.l1d_line * 8);
        }
        for f in sample_gate_faults(&mut rng, GradedUnit::IntAdder, 200) {
            assert!((f.gate as usize) < GradedUnit::IntAdder.gate_count());
        }
    }

    #[test]
    fn sampling_is_seeded() {
        let cfg = CoreConfig::default();
        let a = sample_irf_faults(&mut StdRng::seed_from_u64(9), &cfg, 500, 50);
        let b = sample_irf_faults(&mut StdRng::seed_from_u64(9), &cfg, 500, 50);
        assert_eq!(a, b);
    }
}
