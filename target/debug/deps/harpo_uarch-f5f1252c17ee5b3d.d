/root/repo/target/debug/deps/harpo_uarch-f5f1252c17ee5b3d.d: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/debug/deps/libharpo_uarch-f5f1252c17ee5b3d.rmeta: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

crates/uarch/src/lib.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/config.rs:
crates/uarch/src/core.rs:
crates/uarch/src/trace.rs:
