//! The Evaluator: hardware-in-the-loop grading of candidate programs
//! (paper §IV-A, §V-C step 1).
//!
//! Each candidate is simulated on the out-of-order core model and scored
//! with the target structure's hardware-coverage objective. A program
//! that traps (possible only for hand-fed candidates; MuSeqGen output is
//! valid by construction) scores zero — it would be useless as a fleet
//! test.

use harpo_coverage::TargetStructure;
use harpo_isa::program::Program;
use harpo_isa::state::Signature;
use harpo_uarch::{ExecutionTrace, OooCore};
use serde::{Deserialize, Serialize};

/// Result of grading one program.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The fitness score (hardware coverage, 0 for trapping programs).
    pub coverage: f64,
    /// Golden output signature (None if the program trapped).
    pub signature: Option<Signature>,
    /// The execution trace (None if the program trapped).
    pub trace: Option<ExecutionTrace>,
}

/// Summary statistics of an evaluation round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Best coverage in the round.
    pub best: f64,
    /// Mean coverage of the round.
    pub mean: f64,
}

/// The hardware-in-the-loop evaluator.
#[derive(Debug, Clone)]
pub struct Evaluator {
    core: OooCore,
    structure: TargetStructure,
    cap: u64,
}

impl Evaluator {
    /// Creates an evaluator for a core model and target structure.
    pub fn new(core: OooCore, structure: TargetStructure) -> Evaluator {
        Evaluator {
            core,
            structure,
            cap: 50_000_000,
        }
    }

    /// The target structure.
    pub fn structure(&self) -> TargetStructure {
        self.structure
    }

    /// The core model.
    pub fn core(&self) -> &OooCore {
        &self.core
    }

    /// Grades one program.
    pub fn evaluate(&self, prog: &Program) -> Evaluation {
        match self.core.simulate(prog, self.cap) {
            Err(_) => Evaluation {
                coverage: 0.0,
                signature: None,
                trace: None,
            },
            Ok(sim) => Evaluation {
                coverage: self.structure.coverage(&sim.trace, self.core.config()),
                signature: Some(sim.output.signature),
                trace: Some(sim.trace),
            },
        }
    }

    /// Grades a whole population in parallel, returning coverages in
    /// input order. This is the paper's "programs are simulated in
    /// parallel in gem5" step, scaled to the host's cores.
    pub fn evaluate_population(&self, progs: &[Program], threads: usize) -> Vec<f64> {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        }
        .min(progs.len().max(1));
        let mut out = vec![0.0; progs.len()];
        std::thread::scope(|s| {
            let chunks = out.chunks_mut(progs.len().div_ceil(threads));
            for (t, chunk) in chunks.enumerate() {
                let start = t * progs.len().div_ceil(threads);
                let this = &*self;
                let progs = &progs[start..start + chunk.len()];
                s.spawn(move || {
                    for (score, p) in chunk.iter_mut().zip(progs) {
                        *score = this.evaluate(p).coverage;
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::asm::Asm;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;

    #[test]
    fn trapping_program_scores_zero() {
        let mut a = Asm::new("trap");
        a.mov_ri(B64, Rsi, 1); // bad base
        a.load(B64, Rax, Rsi, 0);
        a.halt();
        let p = a.finish().unwrap();
        let ev = Evaluator::new(OooCore::default(), TargetStructure::Irf);
        let e = ev.evaluate(&p);
        assert_eq!(e.coverage, 0.0);
        assert!(e.trace.is_none());
    }

    #[test]
    fn population_scores_match_single_scores() {
        let ev = Evaluator::new(OooCore::default(), TargetStructure::IntAdder);
        let gen = harpo_museqgen::Generator::new(harpo_museqgen::GenConstraints {
            n_insts: 300,
            ..Default::default()
        });
        let pop: Vec<_> = (0..6).map(|s| gen.generate(s)).collect();
        let batch = ev.evaluate_population(&pop, 3);
        for (i, p) in pop.iter().enumerate() {
            assert_eq!(batch[i], ev.evaluate(p).coverage, "program {i}");
        }
    }
}
