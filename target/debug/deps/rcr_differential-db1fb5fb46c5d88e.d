/root/repo/target/debug/deps/rcr_differential-db1fb5fb46c5d88e.d: tests/rcr_differential.rs

/root/repo/target/debug/deps/rcr_differential-db1fb5fb46c5d88e: tests/rcr_differential.rs

tests/rcr_differential.rs:
