/root/repo/target/debug/examples/golden_journal-c241144772739f16.d: examples/golden_journal.rs

/root/repo/target/debug/examples/golden_journal-c241144772739f16: examples/golden_journal.rs

examples/golden_journal.rs:
