/root/repo/target/debug/deps/semantics_edge_cases-96c5f305126a70f2.d: tests/semantics_edge_cases.rs

/root/repo/target/debug/deps/semantics_edge_cases-96c5f305126a70f2: tests/semantics_edge_cases.rs

tests/semantics_edge_cases.rs:
