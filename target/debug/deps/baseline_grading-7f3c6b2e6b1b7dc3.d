/root/repo/target/debug/deps/baseline_grading-7f3c6b2e6b1b7dc3.d: tests/baseline_grading.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_grading-7f3c6b2e6b1b7dc3.rmeta: tests/baseline_grading.rs Cargo.toml

tests/baseline_grading.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
