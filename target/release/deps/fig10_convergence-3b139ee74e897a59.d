/root/repo/target/release/deps/fig10_convergence-3b139ee74e897a59.d: crates/bench/src/bin/fig10_convergence.rs

/root/repo/target/release/deps/fig10_convergence-3b139ee74e897a59: crates/bench/src/bin/fig10_convergence.rs

crates/bench/src/bin/fig10_convergence.rs:
