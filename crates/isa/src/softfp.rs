//! The canonical software model of HX86's single-precision floating point.
//!
//! HX86's FP semantics are *defined by this module* (and the gate-level
//! netlists in `harpo-gates` are verified to match it bit-for-bit). The
//! model is IEEE-754 binary32 with two circuit-friendly simplifications,
//! both documented in DESIGN.md:
//!
//! 1. **truncation rounding** (round-toward-zero, no guard/sticky bits in
//!    the adder's alignment shifter);
//! 2. **flush-to-zero** for denormal inputs and outputs.
//!
//! NaNs canonicalise to a single quiet NaN pattern. Because the fault-free
//! netlist output *is* the architectural semantics, golden and faulty runs
//! of the fault injector are exactly self-consistent regardless of these
//! simplifications.

/// The canonical quiet NaN produced by every NaN-generating operation.
pub const QNAN: u32 = 0x7FC0_0000;

const SIGN: u32 = 0x8000_0000;
const EXP_MASK: u32 = 0x7F80_0000;
const MAN_MASK: u32 = 0x007F_FFFF;

#[inline]
fn sign(x: u32) -> u32 {
    x >> 31
}

#[inline]
fn exp(x: u32) -> u32 {
    (x >> 23) & 0xFF
}

#[inline]
fn man(x: u32) -> u32 {
    x & MAN_MASK
}

/// Flushes denormals to a same-signed zero. Every operation applies this
/// to its inputs and output.
#[inline]
pub fn flush(x: u32) -> u32 {
    if exp(x) == 0 {
        x & SIGN
    } else {
        x
    }
}

/// Is `x` a NaN (after flushing)?
#[inline]
pub fn is_nan(x: u32) -> bool {
    exp(x) == 0xFF && man(x) != 0
}

/// Is `x` an infinity?
#[inline]
pub fn is_inf(x: u32) -> bool {
    exp(x) == 0xFF && man(x) == 0
}

/// Is `x` a (signed) zero? Denormals count as zero under flush-to-zero.
#[inline]
pub fn is_zero(x: u32) -> bool {
    exp(x) == 0
}

#[inline]
fn pack(s: u32, e: i32, m: u32) -> u32 {
    debug_assert!(e > 0 && e < 255);
    (s << 31) | ((e as u32) << 23) | (m & MAN_MASK)
}

#[inline]
fn inf(s: u32) -> u32 {
    (s << 31) | EXP_MASK
}

#[inline]
fn zero(s: u32) -> u32 {
    s << 31
}

/// 24-bit significand with the hidden bit, valid for normal numbers only.
#[inline]
fn sig24(x: u32) -> u32 {
    man(x) | 0x0080_0000
}

/// Floating-point addition with truncation rounding.
///
/// Effective subtraction drops alignment bits without guard/sticky — the
/// documented HX86 simplification that keeps the adder netlist small.
pub fn fadd(a: u32, b: u32) -> u32 {
    let (a, b) = (flush(a), flush(b));
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    match (is_inf(a), is_inf(b)) {
        (true, true) => {
            return if sign(a) == sign(b) { a } else { QNAN };
        }
        (true, false) => return a,
        (false, true) => return b,
        _ => {}
    }
    match (is_zero(a), is_zero(b)) {
        (true, true) => {
            // +0 unless both are -0 (IEEE round-toward-zero rule gives +0
            // for mixed signs).
            return if sign(a) == 1 && sign(b) == 1 {
                zero(1)
            } else {
                zero(0)
            };
        }
        (true, false) => return b,
        (false, true) => return a,
        _ => {}
    }

    // Order by magnitude: (exp, man) lexicographic.
    let mag_a = (exp(a) << 23) | man(a);
    let mag_b = (exp(b) << 23) | man(b);
    let (big, small) = if mag_a >= mag_b { (a, b) } else { (b, a) };
    let d = exp(big) - exp(small);
    let m_big = sig24(big);
    let m_small = if d > 25 { 0 } else { sig24(small) >> d };
    let s = sign(big);

    if sign(a) == sign(b) {
        let sum = m_big + m_small; // up to 25 bits
        if sum & 0x0100_0000 != 0 {
            let e = exp(big) as i32 + 1;
            if e >= 255 {
                inf(s)
            } else {
                pack(s, e, (sum >> 1) & MAN_MASK)
            }
        } else {
            pack(s, exp(big) as i32, sum & MAN_MASK)
        }
    } else {
        let diff = m_big - m_small;
        if diff == 0 {
            return zero(0);
        }
        // Normalise: shift the leading 1 up to bit 23.
        let lz = diff.leading_zeros() as i32 - 8; // diff < 2^24
        let e = exp(big) as i32 - lz;
        if e <= 0 {
            zero(s)
        } else {
            pack(s, e, (diff << lz) & MAN_MASK)
        }
    }
}

/// Floating-point subtraction: `a + (-b)`.
#[inline]
pub fn fsub(a: u32, b: u32) -> u32 {
    fadd(a, b ^ SIGN)
}

/// Floating-point multiplication with truncation rounding.
pub fn fmul(a: u32, b: u32) -> u32 {
    let (a, b) = (flush(a), flush(b));
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    let s = sign(a) ^ sign(b);
    if is_inf(a) || is_inf(b) {
        if is_zero(a) || is_zero(b) {
            return QNAN;
        }
        return inf(s);
    }
    if is_zero(a) || is_zero(b) {
        return zero(s);
    }
    let p = sig24(a) as u64 * sig24(b) as u64; // 48 bits, bit 47 or 46 set
    let mut e = exp(a) as i32 + exp(b) as i32 - 127;
    let m = if p & (1 << 47) != 0 {
        e += 1;
        (p >> 24) as u32
    } else {
        (p >> 23) as u32
    };
    if e >= 255 {
        inf(s)
    } else if e <= 0 {
        zero(s)
    } else {
        pack(s, e, m & MAN_MASK)
    }
}

/// Comparison outcome of [`fcmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // ordering outcomes named conventionally
pub enum FpCmp {
    /// At least one operand was NaN.
    Unordered,
    Lt,
    Eq,
    Gt,
}

/// Compares two values as reals (−0 equals +0).
pub fn fcmp(a: u32, b: u32) -> FpCmp {
    let (a, b) = (flush(a), flush(b));
    if is_nan(a) || is_nan(b) {
        return FpCmp::Unordered;
    }
    if is_zero(a) && is_zero(b) {
        return FpCmp::Eq;
    }
    // Map to an order-preserving signed key.
    let key = |x: u32| -> i64 {
        let mag = (x & !SIGN) as i64;
        if sign(x) == 1 {
            -mag
        } else {
            mag
        }
    };
    match key(a).cmp(&key(b)) {
        std::cmp::Ordering::Less => FpCmp::Lt,
        std::cmp::Ordering::Equal => FpCmp::Eq,
        std::cmp::Ordering::Greater => FpCmp::Gt,
    }
}

/// `MINSS` semantics: NaN in either operand, or equal values, returns `b`
/// (matching x86's "returns second source" rule).
pub fn fmin(a: u32, b: u32) -> u32 {
    match fcmp(a, b) {
        FpCmp::Lt => flush(a),
        _ => flush(b),
    }
}

/// `MAXSS` semantics: NaN in either operand, or equal values, returns `b`.
pub fn fmax(a: u32, b: u32) -> u32 {
    match fcmp(a, b) {
        FpCmp::Gt => flush(a),
        _ => flush(b),
    }
}

/// Division (not a graded unit, so native IEEE division is used, with
/// flush-to-zero and NaN canonicalisation applied on top).
pub fn fdiv(a: u32, b: u32) -> u32 {
    let (a, b) = (flush(a), flush(b));
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    let r = f32::from_bits(a) / f32::from_bits(b);
    norm_native(r)
}

/// Square root (not a graded unit).
pub fn fsqrt(a: u32) -> u32 {
    let a = flush(a);
    if is_nan(a) {
        return QNAN;
    }
    let r = (f32::from_bits(a) as f64).sqrt() as f32;
    norm_native(r)
}

fn norm_native(r: f32) -> u32 {
    if r.is_nan() {
        QNAN
    } else {
        flush(r.to_bits())
    }
}

/// Converts a signed 64-bit integer to f32 with truncation.
pub fn from_i64(v: i64) -> u32 {
    if v == 0 {
        return 0;
    }
    let s = (v < 0) as u32;
    let mag = v.unsigned_abs();
    let msb = 63 - mag.leading_zeros(); // position of leading 1
    let e = 127 + msb as i32;
    let m = if msb >= 23 {
        (mag >> (msb - 23)) as u32
    } else {
        (mag << (23 - msb)) as u32
    };
    if e >= 255 {
        inf(s)
    } else {
        pack(s, e, m & MAN_MASK)
    }
}

/// Converts a signed 32-bit integer to f32 with truncation.
#[inline]
pub fn from_i32(v: i32) -> u32 {
    from_i64(v as i64)
}

/// The x86 "integer indefinite" result for invalid conversions.
pub const INT64_INDEFINITE: i64 = i64::MIN;

/// Truncating conversion to a signed 64-bit integer (`CVTTSS2SI`).
/// NaN, infinity and out-of-range values produce [`INT64_INDEFINITE`].
pub fn to_i64(x: u32) -> i64 {
    let x = flush(x);
    if is_nan(x) || is_inf(x) {
        return INT64_INDEFINITE;
    }
    if is_zero(x) {
        return 0;
    }
    let e = exp(x) as i32 - 127;
    if e < 0 {
        return 0;
    }
    if e >= 63 {
        return INT64_INDEFINITE;
    }
    let m = sig24(x) as u64;
    let mag = if e >= 23 {
        m << (e - 23)
    } else {
        m >> (23 - e)
    };
    if sign(x) == 1 {
        -(mag as i64)
    } else {
        mag as i64
    }
}

/// Truncating conversion to a signed 32-bit integer.
pub fn to_i32(x: u32) -> i32 {
    let v = to_i64(x);
    if !(i32::MIN as i64..=i32::MAX as i64).contains(&v) {
        i32::MIN
    } else {
        v as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(x: f32) -> u32 {
        x.to_bits()
    }

    #[test]
    fn add_matches_native_closely() {
        let cases = [
            (1.0f32, 2.0f32),
            (1.5, -0.25),
            (1e10, 1e-10),
            (3.25, 3.25),
            (-7.5, 2.125),
            (1e30, 1e30),
        ];
        for (a, b) in cases {
            let ours = f32::from_bits(fadd(f(a), f(b)));
            let native = a + b;
            let rel = ((ours - native) / native.max(1e-30)).abs();
            assert!(rel < 1e-5, "{} + {} = {} (native {})", a, b, ours, native);
        }
    }

    #[test]
    fn exact_dyadic_adds_are_exact() {
        // Sums representable exactly must be bit-exact even under
        // truncation rounding.
        for (a, b, want) in [
            (0.5f32, 0.25f32, 0.75f32),
            (2.0, 2.0, 4.0),
            (1.0, -1.0, 0.0),
        ] {
            assert_eq!(fadd(f(a), f(b)), f(want), "{} + {}", a, b);
        }
    }

    #[test]
    fn mul_matches_native_closely() {
        for (a, b) in [
            (3.0f32, 4.0f32),
            (1.5, 1.5),
            (-2.0, 8.0),
            (1e20, 1e20),
            (1e-30, 1e-30),
        ] {
            let ours = f32::from_bits(fmul(f(a), f(b)));
            let native = a * b;
            if native.is_infinite() {
                assert!(ours.is_infinite());
            } else if native == 0.0 || native.is_subnormal() {
                assert_eq!(ours, 0.0, "flush-to-zero");
            } else {
                let rel = ((ours - native) / native).abs();
                assert!(rel < 1e-6, "{} * {} = {} (native {})", a, b, ours, native);
            }
        }
    }

    #[test]
    fn special_values() {
        let nan = QNAN;
        let pinf = f(f32::INFINITY);
        let ninf = f(f32::NEG_INFINITY);
        assert_eq!(fadd(nan, f(1.0)), QNAN);
        assert_eq!(fadd(pinf, ninf), QNAN);
        assert_eq!(fadd(pinf, f(5.0)), pinf);
        assert_eq!(fmul(pinf, f(0.0)), QNAN);
        assert_eq!(fmul(ninf, f(-2.0)), pinf);
        assert_eq!(fmul(f(0.0), f(-3.0)) >> 31, 1, "signed zero");
    }

    #[test]
    fn denormals_flush() {
        let den = 1u32; // smallest positive denormal
        assert_eq!(flush(den), 0);
        assert_eq!(fadd(den, den), 0);
        assert_eq!(fmul(f(1e-30), f(1e-30)), 0);
    }

    #[test]
    fn cmp_and_minmax() {
        assert_eq!(fcmp(f(1.0), f(2.0)), FpCmp::Lt);
        assert_eq!(fcmp(f(-1.0), f(1.0)), FpCmp::Lt);
        assert_eq!(fcmp(f(-0.0), f(0.0)), FpCmp::Eq);
        assert_eq!(fcmp(QNAN, f(0.0)), FpCmp::Unordered);
        assert_eq!(fmin(f(3.0), f(2.0)), f(2.0));
        assert_eq!(fmax(f(3.0), f(2.0)), f(3.0));
        assert_eq!(fmin(QNAN, f(2.0)), f(2.0), "NaN returns second operand");
    }

    #[test]
    fn int_conversions() {
        assert_eq!(from_i64(0), 0);
        assert_eq!(from_i64(1), f(1.0));
        assert_eq!(from_i64(-12345), f(-12345.0));
        assert_eq!(to_i64(f(7.9)), 7);
        assert_eq!(to_i64(f(-7.9)), -7);
        assert_eq!(to_i64(QNAN), INT64_INDEFINITE);
        assert_eq!(to_i64(f(f32::INFINITY)), INT64_INDEFINITE);
        assert_eq!(to_i32(f(3e10)), i32::MIN);
        // Large magnitudes truncate mantissa bits, stay within 2^63.
        let big = (1i64 << 40) + 12345;
        let conv = to_i64(from_i64(big));
        assert!((conv - big).abs() < (1 << 18));
    }

    #[test]
    fn div_sqrt_deterministic() {
        assert_eq!(fdiv(f(1.0), f(4.0)), f(0.25));
        assert_eq!(fdiv(f(1.0), f(0.0)), f(f32::INFINITY));
        assert_eq!(fsqrt(f(9.0)), f(3.0));
        assert_eq!(fsqrt(f(-1.0)), QNAN);
    }
}
