/root/repo/target/release/deps/rate_comparison-e53ec256fbf2a8bd.d: crates/bench/src/bin/rate_comparison.rs

/root/repo/target/release/deps/rate_comparison-e53ec256fbf2a8bd: crates/bench/src/bin/rate_comparison.rs

crates/bench/src/bin/rate_comparison.rs:
