/root/repo/target/debug/deps/table1_loopstep-37ad9d82a13a70f7.d: crates/bench/src/bin/table1_loopstep.rs

/root/repo/target/debug/deps/table1_loopstep-37ad9d82a13a70f7: crates/bench/src/bin/table1_loopstep.rs

crates/bench/src/bin/table1_loopstep.rs:
