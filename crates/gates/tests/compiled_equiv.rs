//! Differential corpus: the compiled netlist arena is bit-identical to
//! the interpreted evaluator.
//!
//! [`CompiledNet`] folds constants, fuses inverters, drops dead gates
//! and reschedules what is left — every one of those transforms must be
//! invisible in the output bits, fault-free and under any single
//! stuck-at. This suite pins that equivalence three ways:
//!
//! 1. over the four real graded-unit netlists with random operands;
//! 2. for fault-specialized circuits against the interpreter with the
//!    same stuck-at forced, over the same units;
//! 3. over randomly generated netlists (structure, fanout, constants
//!    and outputs all randomized), fault-free and fault-specialized —
//!    the property-test leg that catches emission rules the real units
//!    never exercise.

use harpo_gates::eval::bit_of;
use harpo_gates::{CompiledNet, Evaluator, FaultSet, GradedUnit, Netlist, NetlistBuilder, WireId};

/// Deterministic xorshift64* — the corpus must not depend on an RNG
/// crate's stream staying stable across versions.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const UNITS: [GradedUnit; 4] = [
    GradedUnit::IntAdder,
    GradedUnit::IntMultiplier,
    GradedUnit::FpAdder,
    GradedUnit::FpMultiplier,
];

/// Random input assignment for `net`, as one bool per primary input.
fn random_inputs(rng: &mut Rng, net: &Netlist) -> Vec<bool> {
    (0..net.input_count())
        .map(|_| rng.next() & 1 != 0)
        .collect()
}

fn assert_same_outputs(
    net: &Netlist,
    compiled: &CompiledNet,
    ev: &mut Evaluator,
    inputs: &[bool],
    faults: &FaultSet,
    what: &str,
) {
    let mut ex = compiled.exec();
    ev.run(net, |i| inputs[i], faults);
    compiled.run(&mut ex, |i| inputs[i]);
    for (o, &w) in net.outputs().iter().enumerate() {
        assert_eq!(
            compiled.out_bit(&ex, o),
            ev.wire(w, 0),
            "{what}: output {o} of {}",
            net.name()
        );
    }
}

#[test]
fn graded_units_compile_bit_identical() {
    let mut rng = Rng(0xC0FFEE);
    for unit in UNITS {
        let net = unit.netlist();
        let compiled = CompiledNet::compile(net);
        let mut ev = Evaluator::new(net);
        for round in 0..32 {
            let inputs = random_inputs(&mut rng, net);
            assert_same_outputs(
                net,
                &compiled,
                &mut ev,
                &inputs,
                &FaultSet::none(),
                &format!("{unit:?} fault-free round {round}"),
            );
        }
    }
}

#[test]
fn graded_units_specialize_bit_identical() {
    let mut rng = Rng(0xBADC0DE);
    for unit in UNITS {
        let net = unit.netlist();
        let mut ev = Evaluator::new(net);
        for round in 0..12 {
            let gate = rng.below(net.gate_count()) as u32;
            let stuck_one = rng.next() & 1 != 0;
            let compiled = CompiledNet::compile_with_fault(net, gate, stuck_one);
            for pat in 0..6 {
                let inputs = random_inputs(&mut rng, net);
                assert_same_outputs(
                    net,
                    &compiled,
                    &mut ev,
                    &inputs,
                    &FaultSet::single(gate, stuck_one),
                    &format!(
                        "{unit:?} gate {gate} s@{} round {round}.{pat}",
                        stuck_one as u8
                    ),
                );
            }
        }
    }
}

/// Builds a random netlist: random gate ops over random already-built
/// wires (constants and inputs included, so constant-folding and
/// passthrough-output paths get hit), with random outputs that may be
/// raw inputs or constants.
fn random_netlist(rng: &mut Rng, seed: u64) -> Netlist {
    let mut b = NetlistBuilder::new(format!("rand-{seed}"));
    let n_inputs = 1 + rng.below(6);
    let mut wires: Vec<WireId> = vec![WireId::ZERO, WireId::ONE];
    for _ in 0..n_inputs {
        wires.push(b.input());
    }
    let n_gates = 1 + rng.below(48);
    for _ in 0..n_gates {
        let a = wires[rng.below(wires.len())];
        let c = wires[rng.below(wires.len())];
        let w = match rng.below(8) {
            0 => b.and(a, c),
            1 => b.or(a, c),
            2 => b.xor(a, c),
            3 => b.nand(a, c),
            4 => b.nor(a, c),
            5 => b.xnor(a, c),
            6 => b.not(a),
            _ => {
                let s = wires[rng.below(wires.len())];
                b.mux(s, a, c)
            }
        };
        wires.push(w);
    }
    let n_outputs = 1 + rng.below(6);
    let outputs = (0..n_outputs)
        .map(|_| wires[rng.below(wires.len())])
        .collect();
    b.finish(outputs)
}

#[test]
fn random_netlists_compile_bit_identical() {
    let mut rng = Rng(0x5EED);
    for seed in 0..80 {
        let net = random_netlist(&mut rng, seed);
        let compiled = CompiledNet::compile(&net);
        let mut ev = Evaluator::new(&net);
        for pat in 0u64..16 {
            let inputs: Vec<bool> = (0..net.input_count()).map(|i| bit_of(pat, i)).collect();
            assert_same_outputs(
                &net,
                &compiled,
                &mut ev,
                &inputs,
                &FaultSet::none(),
                &format!("seed {seed} pattern {pat}"),
            );
        }
    }
}

#[test]
fn random_netlists_specialize_bit_identical() {
    let mut rng = Rng(0xFEED_FACE);
    for seed in 0..40 {
        let net = random_netlist(&mut rng, seed);
        let mut ev = Evaluator::new(&net);
        for _ in 0..6 {
            let gate = rng.below(net.gate_count()) as u32;
            let stuck_one = rng.next() & 1 != 0;
            let compiled = CompiledNet::compile_with_fault(&net, gate, stuck_one);
            for pat in 0u64..8 {
                let inputs: Vec<bool> = (0..net.input_count()).map(|i| bit_of(pat, i)).collect();
                assert_same_outputs(
                    &net,
                    &compiled,
                    &mut ev,
                    &inputs,
                    &FaultSet::single(gate, stuck_one),
                    &format!(
                        "seed {seed} gate {gate} s@{} pattern {pat}",
                        stuck_one as u8
                    ),
                );
            }
        }
    }
}
