/root/repo/target/debug/deps/campaign_speed-9044b3f7ad3a8342.d: crates/bench/src/bin/campaign_speed.rs

/root/repo/target/debug/deps/campaign_speed-9044b3f7ad3a8342: crates/bench/src/bin/campaign_speed.rs

crates/bench/src/bin/campaign_speed.rs:
