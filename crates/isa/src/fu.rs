//! Functional-unit providers.
//!
//! The four *graded* hardware structures of the paper's evaluation — the
//! integer adder, the integer multiplier, and the SSE FP adder and
//! multiplier — are accessed by the instruction semantics exclusively
//! through the [`FuProvider`] trait. The default [`NativeFu`] computes
//! results with host arithmetic (bit-identical to the fault-free gate
//! netlists in `harpo-gates`, which is enforced by cross-crate tests);
//! the fault injector substitutes a netlist-backed provider with stuck-at
//! faults applied.
//!
//! Design notes:
//! * The **integer adder** is a single 64-bit carry-chain unit with a
//!   carry-in; subtraction is performed by the semantics layer as
//!   `a + !b + 1` exactly as in hardware, so `SUB`/`CMP`/`NEG`/`DEC` all
//!   exercise the same physical adder.
//! * The **integer multiplier** is a 32×32→64 array; wider multiplies are
//!   composed from multiple unit passes (schoolbook decomposition), as in
//!   designs that iterate a narrower array. A 64-bit `IMUL` therefore
//!   makes 3–4 passes through the unit.
//! * The **FP units** operate on single-precision values per pass; packed
//!   (4-lane) SSE instructions make four passes.

use crate::form::FuKind;
use crate::softfp;
use serde::{Deserialize, Serialize};

/// One operand pair passed through a graded functional unit. Recorded in
/// the execution trace; the IBR coverage metric and the gate-level fault
/// injector both consume these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuPass {
    /// Which unit the pass used.
    pub kind: FuKind,
    /// First operand (zero-extended to 64 bits).
    pub a: u64,
    /// Second operand. For the integer adder this is the possibly-inverted
    /// addend; bit 0 of `c` carries the carry-in.
    pub b: u64,
    /// Carry-in for adder passes; 0 otherwise.
    pub cin: bool,
}

/// Provider of functional-unit results. Implementations must be pure
/// functions of their operands (the architectural semantics requires
/// determinism); `&mut self` allows implementations to keep scratch
/// buffers and statistics.
pub trait FuProvider {
    /// 64-bit addition with carry-in; returns (sum, carry-out).
    fn int_add(&mut self, a: u64, b: u64, cin: bool) -> (u64, bool);

    /// 32×32→64 unsigned multiplication.
    fn int_mul32(&mut self, a: u32, b: u32) -> u64;

    /// Single-precision FP addition (truncation rounding, flush-to-zero).
    fn fp_add(&mut self, a: u32, b: u32) -> u32;

    /// Single-precision FP multiplication.
    fn fp_mul(&mut self, a: u32, b: u32) -> u32;
}

/// Host-arithmetic provider: the reference semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeFu;

impl FuProvider for NativeFu {
    #[inline]
    fn int_add(&mut self, a: u64, b: u64, cin: bool) -> (u64, bool) {
        let (s1, c1) = a.overflowing_add(b);
        let (s2, c2) = s1.overflowing_add(cin as u64);
        (s2, c1 | c2)
    }

    #[inline]
    fn int_mul32(&mut self, a: u32, b: u32) -> u64 {
        a as u64 * b as u64
    }

    #[inline]
    fn fp_add(&mut self, a: u32, b: u32) -> u32 {
        softfp::fadd(a, b)
    }

    #[inline]
    fn fp_mul(&mut self, a: u32, b: u32) -> u32 {
        softfp::fmul(a, b)
    }
}

/// Composed multi-pass operations built on the 32×32 multiplier unit.
/// These helpers are used by both the semantics layer and the fault
/// injector so the pass decomposition is defined in exactly one place.
pub mod compose {
    use super::FuProvider;

    /// Full 64×64→128 unsigned multiply: four unit passes (schoolbook).
    /// Returns (low, high).
    pub fn mul_u64_wide<F: FuProvider + ?Sized>(fu: &mut F, a: u64, b: u64) -> (u64, u64) {
        let (al, ah) = (a as u32, (a >> 32) as u32);
        let (bl, bh) = (b as u32, (b >> 32) as u32);
        let ll = fu.int_mul32(al, bl);
        let lh = fu.int_mul32(al, bh);
        let hl = fu.int_mul32(ah, bl);
        let hh = fu.int_mul32(ah, bh);
        // Composition adds are part of the multiplier's internal reduction
        // tree in real hardware; they are performed natively here and the
        // graded structure remains the 32×32 array.
        let mid = lh.wrapping_add(hl);
        let mid_carry = (mid < lh) as u64;
        let lo = ll.wrapping_add(mid << 32);
        let lo_carry = (lo < ll) as u64;
        let hi = hh
            .wrapping_add(mid >> 32)
            .wrapping_add(mid_carry << 32)
            .wrapping_add(lo_carry);
        (lo, hi)
    }

    /// Low-64 result of a 64×64 multiply: three unit passes (the high
    /// partial product cannot influence the low half).
    pub fn mul_u64_low<F: FuProvider + ?Sized>(fu: &mut F, a: u64, b: u64) -> u64 {
        let (al, ah) = (a as u32, (a >> 32) as u32);
        let (bl, bh) = (b as u32, (b >> 32) as u32);
        let ll = fu.int_mul32(al, bl);
        let lh = fu.int_mul32(al, bh);
        let hl = fu.int_mul32(ah, bl);
        ll.wrapping_add((lh.wrapping_add(hl)) << 32)
    }

    /// Signed 64×64→128 multiply built from the unsigned wide multiply.
    pub fn mul_i64_wide<F: FuProvider + ?Sized>(fu: &mut F, a: i64, b: i64) -> (u64, i64) {
        let (lo, hi_u) = mul_u64_wide(fu, a as u64, b as u64);
        // Standard signed correction of the unsigned product.
        let mut hi = hi_u as i64;
        if a < 0 {
            hi = hi.wrapping_sub(b);
        }
        if b < 0 {
            hi = hi.wrapping_sub(a);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::compose::*;
    use super::*;

    #[test]
    fn native_add_carries() {
        let mut fu = NativeFu;
        assert_eq!(fu.int_add(1, 2, false), (3, false));
        assert_eq!(fu.int_add(u64::MAX, 0, true), (0, true));
        assert_eq!(fu.int_add(u64::MAX, 1, false), (0, true));
        assert_eq!(fu.int_add(u64::MAX, u64::MAX, true), (u64::MAX, true));
    }

    #[test]
    fn wide_multiply_matches_u128() {
        let mut fu = NativeFu;
        let cases = [
            (0u64, 0u64),
            (u64::MAX, u64::MAX),
            (0x1234_5678_9ABC_DEF0, 0x0FED_CBA9_8765_4321),
            (1 << 63, 3),
        ];
        for (a, b) in cases {
            let (lo, hi) = mul_u64_wide(&mut fu, a, b);
            let want = a as u128 * b as u128;
            assert_eq!(lo, want as u64, "lo of {a:#x}*{b:#x}");
            assert_eq!(hi, (want >> 64) as u64, "hi of {a:#x}*{b:#x}");
            assert_eq!(mul_u64_low(&mut fu, a, b), want as u64);
        }
    }

    #[test]
    fn signed_wide_multiply_matches_i128() {
        let mut fu = NativeFu;
        for (a, b) in [
            (-5i64, 7i64),
            (i64::MIN, -1),
            (i64::MAX, i64::MIN),
            (-1, -1),
        ] {
            let (lo, hi) = mul_i64_wide(&mut fu, a, b);
            let want = a as i128 * b as i128;
            assert_eq!(lo, want as u64);
            assert_eq!(hi, (want >> 64) as i64);
        }
    }
}
