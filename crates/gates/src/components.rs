//! Reusable bus-level circuit building blocks.
//!
//! All buses are LSB-first wire lists. These combinators are shared by the
//! four functional-unit circuits; each lowers to primitive gates through
//! the [`NetlistBuilder`].

use crate::netlist::{NetlistBuilder, WireId};

/// A constant bus of `n` bits holding `value`.
pub fn const_bus(value: u64, n: usize) -> Vec<WireId> {
    (0..n)
        .map(|i| {
            if value >> i & 1 == 1 {
                WireId::ONE
            } else {
                WireId::ZERO
            }
        })
        .collect()
}

/// Ripple-carry addition of two equal-width buses with carry-in.
/// Returns `(sum, carry_out)`. 5 gates per bit.
pub fn ripple_add(
    b: &mut NetlistBuilder,
    a: &[WireId],
    bb: &[WireId],
    cin: WireId,
) -> (Vec<WireId>, WireId) {
    assert_eq!(a.len(), bb.len(), "bus width mismatch");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let x = b.xor(a[i], bb[i]);
        sum.push(b.xor(x, carry));
        let g = b.and(a[i], bb[i]);
        let p = b.and(x, carry);
        carry = b.or(g, p);
    }
    (sum, carry)
}

/// Two's-complement subtraction `a - b` via `a + !b + 1`.
/// Returns `(difference, no_borrow)`: `no_borrow == 1` iff `a >= b`.
pub fn ripple_sub(b: &mut NetlistBuilder, a: &[WireId], bb: &[WireId]) -> (Vec<WireId>, WireId) {
    let inv: Vec<WireId> = bb.iter().map(|&w| b.not(w)).collect();
    ripple_add(b, a, &inv, WireId::ONE)
}

/// Per-bit 2:1 mux: `sel ? a : b`.
pub fn mux_bus(b: &mut NetlistBuilder, sel: WireId, a: &[WireId], bb: &[WireId]) -> Vec<WireId> {
    assert_eq!(a.len(), bb.len());
    a.iter().zip(bb).map(|(&x, &y)| b.mux(sel, x, y)).collect()
}

/// OR-reduction of a bus.
pub fn or_tree(b: &mut NetlistBuilder, bus: &[WireId]) -> WireId {
    match bus.len() {
        0 => WireId::ZERO,
        1 => bus[0],
        _ => {
            let mut layer = bus.to_vec();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    next.push(if pair.len() == 2 {
                        b.or(pair[0], pair[1])
                    } else {
                        pair[0]
                    });
                }
                layer = next;
            }
            layer[0]
        }
    }
}

/// AND-reduction of a bus.
pub fn and_tree(b: &mut NetlistBuilder, bus: &[WireId]) -> WireId {
    match bus.len() {
        0 => WireId::ONE,
        1 => bus[0],
        _ => {
            let mut layer = bus.to_vec();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    next.push(if pair.len() == 2 {
                        b.and(pair[0], pair[1])
                    } else {
                        pair[0]
                    });
                }
                layer = next;
            }
            layer[0]
        }
    }
}

/// `bus == 0`.
pub fn is_zero(b: &mut NetlistBuilder, bus: &[WireId]) -> WireId {
    let any = or_tree(b, bus);
    b.not(any)
}

/// `bus == value` for a constant.
pub fn eq_const(b: &mut NetlistBuilder, bus: &[WireId], value: u64) -> WireId {
    let terms: Vec<WireId> = bus
        .iter()
        .enumerate()
        .map(|(i, &w)| if value >> i & 1 == 1 { w } else { b.not(w) })
        .collect();
    and_tree(b, &terms)
}

/// Logical right barrel shift of `bus` by the binary amount `sh`
/// (LSB-first shift-amount bits), filling with zeros. Width stays fixed;
/// shift amounts ≥ `bus.len()` produce all-zeros as long as `sh` can
/// express them.
pub fn barrel_right(b: &mut NetlistBuilder, bus: &[WireId], sh: &[WireId]) -> Vec<WireId> {
    let n = bus.len();
    let mut cur = bus.to_vec();
    for (k, &s) in sh.iter().enumerate() {
        let step = 1usize << k;
        let shifted: Vec<WireId> = (0..n)
            .map(|i| {
                if i + step < n {
                    cur[i + step]
                } else {
                    WireId::ZERO
                }
            })
            .collect();
        cur = mux_bus(b, s, &shifted, &cur);
    }
    cur
}

/// Logical left barrel shift (zero fill).
pub fn barrel_left(b: &mut NetlistBuilder, bus: &[WireId], sh: &[WireId]) -> Vec<WireId> {
    let n = bus.len();
    let mut cur = bus.to_vec();
    for (k, &s) in sh.iter().enumerate() {
        let step = 1usize << k;
        let shifted: Vec<WireId> = (0..n)
            .map(|i| {
                if i >= step {
                    cur[i - step]
                } else {
                    WireId::ZERO
                }
            })
            .collect();
        cur = mux_bus(b, s, &shifted, &cur);
    }
    cur
}

/// Normalising left-shifter: shifts `bus` left until its MSB is 1 and
/// returns `(normalised bus, shift count bits LSB-first)`. If the bus is
/// all zeros the count saturates at `2^levels - 1`; callers special-case
/// zero beforehand. `levels = ceil(log2(bus.len()))`.
pub fn normalize_left(b: &mut NetlistBuilder, bus: &[WireId]) -> (Vec<WireId>, Vec<WireId>) {
    let n = bus.len();
    let levels = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    let mut cur = bus.to_vec();
    let mut count = vec![WireId::ZERO; levels];
    for k in (0..levels).rev() {
        let step = 1usize << k;
        if step >= n {
            // A shift this large only applies to all-zero values; keep the
            // count bit as the all-zero indicator of the whole bus.
            let z = is_zero(b, &cur);
            count[k] = z;
            continue;
        }
        // Are the top `step` bits all zero?
        let top = &cur[n - step..];
        let allz = is_zero(b, top);
        count[k] = allz;
        let shifted: Vec<WireId> = (0..n)
            .map(|i| {
                if i >= step {
                    cur[i - step]
                } else {
                    WireId::ZERO
                }
            })
            .collect();
        cur = mux_bus(b, allz, &shifted, &cur);
    }
    (cur, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{bit_of, Evaluator, FaultSet};
    use crate::netlist::Netlist;

    /// Builds a throwaway circuit around `f` over one n-bit input bus.
    fn harness1(
        n: usize,
        f: impl FnOnce(&mut NetlistBuilder, &[WireId]) -> Vec<WireId>,
    ) -> Netlist {
        let mut b = NetlistBuilder::new("h");
        let bus = b.input_bus(n);
        let out = f(&mut b, &bus);
        b.finish(out)
    }

    fn run1(net: &Netlist, v: u64) -> u64 {
        let mut ev = Evaluator::new(net);
        ev.run(net, |i| bit_of(v, i), &FaultSet::none());
        ev.bus(net.outputs(), 0)
    }

    #[test]
    fn ripple_add_matches_native() {
        let mut b = NetlistBuilder::new("add16");
        let a = b.input_bus(16);
        let bb = b.input_bus(16);
        let (sum, cout) = ripple_add(&mut b, &a, &bb, WireId::ZERO);
        let mut outs = sum;
        outs.push(cout);
        let net = b.finish(outs);
        let mut ev = Evaluator::new(&net);
        for (x, y) in [
            (0u64, 0u64),
            (1, 1),
            (0xFFFF, 1),
            (0x1234, 0xEDCB),
            (0x8000, 0x8000),
        ] {
            ev.run(
                &net,
                |i| {
                    if i < 16 {
                        bit_of(x, i)
                    } else {
                        bit_of(y, i - 16)
                    }
                },
                &FaultSet::none(),
            );
            assert_eq!(ev.bus(net.outputs(), 0), x + y, "{x}+{y}");
        }
    }

    #[test]
    fn ripple_sub_and_compare() {
        let mut b = NetlistBuilder::new("sub8");
        let a = b.input_bus(8);
        let bb = b.input_bus(8);
        let (diff, ge) = ripple_sub(&mut b, &a, &bb);
        let mut outs = diff;
        outs.push(ge);
        let net = b.finish(outs);
        let mut ev = Evaluator::new(&net);
        for (x, y) in [(5u64, 3u64), (3, 5), (0, 0), (255, 1), (1, 255)] {
            ev.run(
                &net,
                |i| {
                    if i < 8 {
                        bit_of(x, i)
                    } else {
                        bit_of(y, i - 8)
                    }
                },
                &FaultSet::none(),
            );
            let out = ev.bus(net.outputs(), 0);
            assert_eq!(out & 0xFF, x.wrapping_sub(y) & 0xFF);
            assert_eq!(out >> 8 == 1, x >= y, "{x} >= {y}");
        }
    }

    #[test]
    fn barrel_shifts() {
        for sh_amt in 0u64..16 {
            let net = harness1(16, |b, bus| {
                let sh = const_bus(sh_amt, 4);
                barrel_right(b, bus, &sh)
            });
            assert_eq!(run1(&net, 0xF0F0), 0xF0F0 >> sh_amt, "right by {sh_amt}");
            let net = harness1(16, |b, bus| {
                let sh = const_bus(sh_amt, 4);
                barrel_left(b, bus, &sh)
            });
            assert_eq!(
                run1(&net, 0xF0F0),
                (0xF0F0 << sh_amt) & 0xFFFF,
                "left by {sh_amt}"
            );
        }
    }

    #[test]
    fn zero_and_const_detectors() {
        let net = harness1(8, |b, bus| {
            let z = is_zero(b, bus);
            let e = eq_const(b, bus, 0xA5);
            vec![z, e]
        });
        assert_eq!(run1(&net, 0), 0b01);
        assert_eq!(run1(&net, 0xA5), 0b10);
        assert_eq!(run1(&net, 7), 0b00);
    }

    #[test]
    fn normalizer_all_zero_saturates() {
        let net = harness1(24, |b, bus| {
            let (norm, cnt) = normalize_left(b, bus);
            let mut outs = norm;
            outs.extend(cnt);
            outs
        });
        let out = run1(&net, 0);
        assert_eq!(out & 0xFF_FFFF, 0, "zero stays zero");
        assert_eq!(out >> 24, 31, "count saturates at 2^levels - 1");
    }

    #[test]
    fn const_bus_roundtrips() {
        for v in [0u64, 1, 0xA5, 0xFFFF] {
            let net = harness1(1, |b, _| {
                let bus = const_bus(v, 16);
                // Pass constants through a mux so they become outputs.
                bus.iter()
                    .map(|&w| b.mux(WireId::ONE, w, WireId::ZERO))
                    .collect()
            });
            assert_eq!(run1(&net, 0), v & 0xFFFF);
        }
    }

    #[test]
    fn normalizer_finds_leading_one() {
        let net = harness1(24, |b, bus| {
            let (norm, cnt) = normalize_left(b, bus);
            let mut outs = norm;
            outs.extend(cnt);
            outs
        });
        for v in [1u64, 2, 0x800000, 0x123456, 0x000080] {
            let out = run1(&net, v);
            let norm = out & 0xFF_FFFF;
            let cnt = out >> 24;
            let expect_cnt = v.leading_zeros() as u64 - 40; // 24-bit value in u64
            assert_eq!(cnt, expect_cnt, "count for {v:#x}");
            assert_eq!(norm, (v << expect_cnt) & 0xFF_FFFF, "norm for {v:#x}");
            assert!(norm & 0x80_0000 != 0, "MSB set after normalise");
        }
    }
}
