/root/repo/target/debug/deps/property_suite-57bbc0085961e2f2.d: tests/property_suite.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_suite-57bbc0085961e2f2.rmeta: tests/property_suite.rs Cargo.toml

tests/property_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
