/root/repo/target/debug/deps/telemetry_journal-16d0064e52ac258f.d: tests/telemetry_journal.rs

/root/repo/target/debug/deps/telemetry_journal-16d0064e52ac258f: tests/telemetry_journal.rs

tests/telemetry_journal.rs:
