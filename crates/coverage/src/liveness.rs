//! Transitive dynamic-liveness analysis.
//!
//! True ACE analysis (Mukherjee et al. 2003) excludes *transitively
//! dynamically dead* values: a register read only makes the producing bit
//! ACE if the consuming instruction's own results eventually reach the
//! architecturally observable output. This module computes, per dynamic
//! instruction, whether it is **live** — a single backward dataflow pass
//! over the trace's def/use records:
//!
//! * at program end the whole observable state is live: every register,
//!   the flags, and the entire memory image (the output signature hashes
//!   all of them);
//! * an instruction is live iff it defines something live-out (a live
//!   register/flag, or a store to live bytes), or it is a *real* branch
//!   (control decisions are conservatively live; the fall-through-equal
//!   branches of generated linear tests are provably dead);
//! * a live instruction's uses (registers, flags, loaded bytes) become
//!   live; every definition kills liveness above it.

use harpo_uarch::ExecutionTrace;
use std::collections::HashSet;

/// Per-dynamic-instruction liveness: `true` when the instruction's
/// results can reach the program's observable output.
pub fn dynamic_liveness(trace: &ExecutionTrace) -> Vec<bool> {
    let n = trace.dyn_records.len();
    let mut live = vec![false; n];

    let mut live_gpr: u16 = 0xFFFF;
    let mut live_xmm: u16 = 0xFFFF;
    let mut live_flags = true;
    // Memory: all bytes live at the end; `dead_mem` holds the exceptions
    // (bytes overwritten before any live read, discovered walking back).
    let mut dead_mem: HashSet<u64> = HashSet::new();

    for (i, r) in trace.dyn_records.iter().enumerate().rev() {
        let store_live = r.is_store
            && (r.mem_addr..r.mem_addr + r.mem_size as u64).any(|b| !dead_mem.contains(&b));
        let defines_live = (r.writes_gpr & live_gpr) != 0
            || (r.writes_xmm & live_xmm) != 0
            || (r.writes_flags && live_flags)
            || store_live;
        let is_live = defines_live || r.branch == 2;

        // Kill definitions (whether the instruction is live or dead — a
        // dead write still destroys the prior value).
        live_gpr &= !r.writes_gpr;
        live_xmm &= !r.writes_xmm;
        if r.writes_flags {
            live_flags = false;
        }
        if r.is_store {
            for b in r.mem_addr..r.mem_addr + r.mem_size as u64 {
                dead_mem.insert(b);
            }
        }

        if is_live {
            live[i] = true;
            live_gpr |= r.reads_gpr;
            live_xmm |= r.reads_xmm;
            if r.reads_flags {
                live_flags = true;
            }
            if r.mem_size > 0 && !r.is_store {
                for b in r.mem_addr..r.mem_addr + r.mem_size as u64 {
                    dead_mem.remove(&b);
                }
            }
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::asm::Asm;
    use harpo_isa::form::Mnemonic;
    use harpo_isa::mem::DATA_BASE;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;
    use harpo_uarch::OooCore;

    fn trace_of(a: Asm) -> ExecutionTrace {
        let p = a.finish().unwrap();
        OooCore::default().simulate(&p, 1_000_000).unwrap().trace
    }

    #[test]
    fn final_values_are_live_dead_values_are_not() {
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rax, 1); // dyn 0: overwritten unread → dead
        a.mov_ri(B64, Rax, 2); // dyn 1: overwritten unread → dead
        a.mov_ri(B64, Rax, 3); // dyn 2: final rax → live
        a.halt();
        let t = trace_of(a);
        let live = dynamic_liveness(&t);
        assert!(!live[0], "first write is transitively dead");
        assert!(!live[1]);
        assert!(live[2], "final value is observable");
    }

    #[test]
    fn chains_propagate_liveness_backward() {
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rbx, 7); // live: feeds the chain
        a.mov_rr(B64, Rcx, Rbx); // live
        a.add_rr(B64, Rdx, Rcx); // live: rdx is final
        a.mov_ri(B64, R8, 9); // dyn 3: r8 overwritten
        a.mov_ri(B64, R8, 10); // live: final r8
        a.halt();
        let t = trace_of(a);
        let live = dynamic_liveness(&t);
        assert!(live[0] && live[1] && live[2]);
        assert!(!live[3]);
        assert!(live[4]);
    }

    #[test]
    fn stores_are_live_unless_overwritten() {
        let mut a = Asm::new("t");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rax, 1);
        a.store(B64, Rsi, 0, Rax); // dyn 1: overwritten below → dead
        a.mov_ri(B64, Rax, 2);
        a.store(B64, Rsi, 0, Rax); // dyn 3: survives to final memory → live
        a.mov_ri(B64, Rax, 3);
        a.store(B64, Rsi, 64, Rax); // dyn 5: different byte → live
        a.halt();
        let t = trace_of(a);
        let live = dynamic_liveness(&t);
        assert!(!live[1], "fully overwritten store is dead");
        assert!(live[3]);
        assert!(live[5]);
        // dyn 0 fed only the dead store; dyn 2 feeds the live one.
        assert!(!live[0]);
        assert!(live[2]);
    }

    #[test]
    fn flag_only_consumers_with_trivial_branches_are_dead() {
        // CMP feeding only a fall-through-equal branch: both dead — but
        // the *last* flag write is live (flags are in the signature).
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rax, 1);
        a.cmp_ri(B64, Rax, 5); // flags overwritten below → dead
        a.cmp_ri(B64, Rax, 6); // final flags → live
        a.halt();
        let t = trace_of(a);
        let live = dynamic_liveness(&t);
        assert!(!live[1], "overwritten flags are dead");
        assert!(live[2], "final flags are hashed");
    }

    #[test]
    fn real_branches_keep_their_inputs_live() {
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rcx, 3);
        a.label("l");
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l"); // a real loop branch: live, keeps flags live
        a.halt();
        let t = trace_of(a);
        let live = dynamic_liveness(&t);
        // Every dynamic sub and jnz is live (they steer control).
        for (i, r) in t.dyn_records.iter().enumerate() {
            if r.branch == 2 {
                assert!(live[i], "real branch {i} live");
            }
        }
    }

    #[test]
    fn loads_keep_stored_bytes_live() {
        let mut a = Asm::new("t");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rax, 42);
        a.store(B64, Rsi, 0, Rax); // read back below → live
        a.load(B64, Rbx, Rsi, 0); // rbx final → live load
                                  // Overwrite the byte so the *memory* is no longer the store's
                                  // value; the store stays live through the load.
        a.mov_ri(B64, Rcx, 0);
        a.store(B64, Rsi, 0, Rcx);
        a.halt();
        let t = trace_of(a);
        let live = dynamic_liveness(&t);
        assert!(live[1], "store read back before overwrite is live");
    }

    #[test]
    fn dead_cmp_chain_is_fully_dead() {
        let mut a = Asm::new("t");
        a.mov_ri(B64, R9, 5); // feeds only a dead cmp → dead
        a.op_ri(Mnemonic::Cmp, B64, R9, 1); // flags overwritten → dead
        a.mov_ri(B64, R9, 0); // kills r9; final value live
        a.add_ri(B64, Rax, 1); // final flags + rax → live
        a.halt();
        let t = trace_of(a);
        let live = dynamic_liveness(&t);
        assert!(!live[0]);
        assert!(!live[1]);
        assert!(live[2] && live[3]);
    }
}
