//! Cross-run diff identities and the golden drift snapshot.
//!
//! Three properties pin `harpo diff`'s verdict against the engine, and
//! a golden snapshot pins its rendering byte for byte:
//!
//! 1. **Self-diff is empty**: diffing any run journal against itself
//!    reports no drift and `diff_cmd` exits cleanly.
//! 2. **Streaming is invisible**: a streaming-on and a streaming-off
//!    run of the same seeded campaign diff clean — the v4 liveness
//!    records and wall-clock fields are exactly the non-canonical part
//!    of the journal.
//! 3. **Archive ingest is order-independent**: `harpo history` renders
//!    identical Markdown whatever order the runs were archived in.
//!
//! The golden snapshot (`tests/data/golden_diff_{a,b}.jsonl` →
//! `golden_diff.md`) is a hand-written pair of schema-v5 journals whose
//! faults drift in both directions. Regenerate after an intentional
//! rendering change with:
//!
//! ```text
//! cargo run -p harpo-cli --bin harpo -- diff tests/data/golden_diff_a.jsonl \
//!     tests/data/golden_diff_b.jsonl --out tests/data/golden_diff.md
//! ```

use harpo_cli::archive::run_record;
use harpo_cli::autopsy::forensic_records;
use harpo_cli::diff::{diff_cmd, render_diff};
use harpo_coverage::TargetStructure;
use harpo_faultsim::{CampaignConfig, StreamSettings};
use harpo_museqgen::{GenConstraints, Generator};
use harpo_telemetry::{canonical_journal, JsonlSink, Record, Telemetry};
use harpo_uarch::OooCore;
use std::sync::Arc;

fn repo_file(rel: &str) -> String {
    let path = format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("harpo-diffid-{}-{name}", std::process::id()))
}

/// A small deterministic forensic campaign journal, as text.
fn campaign_journal(seed: u64, threads: usize) -> String {
    let prog = Generator::new(GenConstraints {
        n_insts: 200,
        ..GenConstraints::default()
    })
    .generate(seed);
    let ccfg = CampaignConfig {
        n_faults: 24,
        threads,
        ..CampaignConfig::default()
    };
    let (_, _, records) =
        forensic_records(&prog, TargetStructure::Irf, &ccfg).expect("campaign runs");
    let mut text = String::new();
    for r in &records {
        text.push_str(&r.to_json());
        text.push('\n');
    }
    text
}

#[test]
fn self_diff_reports_no_drift_and_exits_cleanly() {
    let text = campaign_journal(7, 2);
    let (md, drift) = render_diff(("a.jsonl", &text), ("b.jsonl", &text)).unwrap();
    assert!(!drift, "self-diff drifted:\n{md}");
    assert!(md.contains("No outcome drift"), "{md}");
    assert!(md.contains("Canonical journals are identical"), "{md}");

    // The CLI entry point agrees: Ok(()) is exit 0.
    let a = tmp("self.jsonl");
    std::fs::write(&a, &text).unwrap();
    let argv = vec![
        a.to_str().unwrap().to_string(),
        a.to_str().unwrap().to_string(),
    ];
    assert_eq!(diff_cmd(&argv), Ok(()));
    std::fs::remove_file(&a).ok();
}

#[test]
fn live_autopsy_records_carry_parseable_fault_keys() {
    use harpo_telemetry::{FaultKey, Journal};
    let text = campaign_journal(7, 2);
    let journal = Journal::parse("a.jsonl", &text).unwrap();
    let outcomes = journal.outcomes();
    assert_eq!(outcomes.len(), 24, "one keyed outcome per injected fault");
    for (key, _) in &outcomes {
        let k = FaultKey::parse(key).unwrap_or_else(|| panic!("unparseable key `{key}`"));
        assert_eq!(k.structure, "IRF");
        assert_eq!(k.model, "transient");
        assert_eq!(k.program.len(), 32, "128-bit fingerprint as hex");
        assert!(k.site.starts_with('p'), "IRF site grammar: {}", k.site);
    }
    // The key is a pure function of (structure, program, site, model):
    // an identical campaign stamps identical keys.
    let again = campaign_journal(7, 2);
    let j2 = Journal::parse("b.jsonl", &again).unwrap();
    let keys = |j: &[(String, &harpo_telemetry::Value)]| -> Vec<String> {
        j.iter().map(|(k, _)| k.clone()).collect()
    };
    assert_eq!(keys(&journal.outcomes()), keys(&j2.outcomes()));
}

#[test]
fn streaming_on_vs_off_campaign_journals_diff_clean() {
    // Same campaign, once with live streaming telemetry and once
    // without. The raw journals differ (progress/heartbeat records,
    // wall-clock fields); the diff must see through all of it.
    let prog = Generator::new(GenConstraints {
        n_insts: 200,
        ..GenConstraints::default()
    })
    .generate(11);
    let core = OooCore::default();
    let structure = TargetStructure::Irf;
    let run = |suffix: &str, cadence_ms: u64| {
        let path = tmp(&format!("stream-{suffix}.jsonl"));
        let sink = JsonlSink::create(&path).expect("create journal");
        let telemetry = Telemetry::to(Arc::new(sink));
        let ccfg = CampaignConfig {
            n_faults: 24,
            threads: 2,
            forensics: true,
            stream: StreamSettings {
                cadence_ms,
                ..StreamSettings::default()
            },
            ..CampaignConfig::default()
        };
        let sim = core.simulate(&prog, ccfg.cap).expect("golden run");
        let (result, autopsies) = harpo_faultsim::measure_detection_streamed(
            &prog,
            structure,
            &core,
            &ccfg,
            &sim.output.signature,
            &sim.trace,
            None,
            &telemetry,
        );
        for a in &autopsies {
            telemetry.emit(|| a.to_record());
        }
        telemetry.emit(|| {
            Record::new("campaign")
                .field("structure", structure.label())
                .field("faults", result.injected)
                .field("detection", result.detection())
        });
        telemetry.flush();
        let text = std::fs::read_to_string(&path).expect("read journal back");
        std::fs::remove_file(&path).ok();
        text
    };
    let on = run("on", 1);
    let off = run("off", 0);

    assert!(
        on.contains("\"kind\":\"progress\""),
        "streaming run streams"
    );
    assert!(!off.contains("\"kind\":\"progress\""));
    assert_eq!(canonical_journal(&on), canonical_journal(&off));

    let (md, drift) = render_diff(("on.jsonl", &on), ("off.jsonl", &off)).unwrap();
    assert!(!drift, "streaming drifted the campaign:\n{md}");
    assert!(md.contains("Verdict: **no drift**"), "{md}");
}

#[test]
fn archive_history_is_ingest_order_independent() {
    use harpo_cli::archive::render_history_md;
    let j1 = campaign_journal(7, 2);
    let r1 = run_record("irf-a.jsonl", &j1, "run-a").unwrap().to_json();
    let r2 = run_record("BENCH_x.json", r#"{"campaign_speedup_t4":3.1}"#, "bench-x")
        .unwrap()
        .to_json();
    let r3 = run_record("irf-b.jsonl", &campaign_journal(8, 2), "run-b")
        .unwrap()
        .to_json();
    let orders = [
        format!("{r1}\n{r2}\n{r3}\n"),
        format!("{r3}\n{r1}\n{r2}\n"),
        format!("{r2}\n{r3}\n{r1}\n"),
    ];
    let rendered: Vec<String> = orders
        .iter()
        .map(|text| render_history_md("history.jsonl", text).unwrap())
        .collect();
    assert_eq!(rendered[0], rendered[1]);
    assert_eq!(rendered[0], rendered[2]);
    assert!(
        rendered[0].contains("#### Detection trends"),
        "{}",
        rendered[0]
    );
    assert!(
        rendered[0].contains("`campaign_speedup_t4`"),
        "{}",
        rendered[0]
    );
}

#[test]
fn golden_diff_is_byte_identical() {
    let a = repo_file("tests/data/golden_diff_a.jsonl");
    let b = repo_file("tests/data/golden_diff_b.jsonl");
    let (md, drift) = render_diff(
        ("tests/data/golden_diff_a.jsonl", &a),
        ("tests/data/golden_diff_b.jsonl", &b),
    )
    .unwrap();
    assert!(drift, "the golden pair drifts by construction");

    // The transition matrix is non-empty and the first divergent
    // canonical record is named with its content.
    assert!(
        md.contains("**2 matched fault(s) changed outcome.**"),
        "{md}"
    );
    assert!(md.contains("| **sdc** | 1 | 0 | 1 | 0 |"), "{md}");
    assert!(
        md.contains("Canonical journals diverge at record 2"),
        "{md}"
    );
    assert!(
        md.contains(r#"- a: `{"kind":"autopsy","v":5,"fault":0"#),
        "{md}"
    );

    let committed = repo_file("tests/data/golden_diff.md");
    assert_eq!(
        md, committed,
        "diff output drifted from tests/data/golden_diff.md — if the \
         change is intentional, regenerate it (see this test's module docs)"
    );
}
