/root/repo/target/debug/deps/proptest-7a88e2acc4faf56b.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7a88e2acc4faf56b.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7a88e2acc4faf56b.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
