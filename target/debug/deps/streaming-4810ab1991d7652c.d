/root/repo/target/debug/deps/streaming-4810ab1991d7652c.d: crates/faultsim/tests/streaming.rs

/root/repo/target/debug/deps/streaming-4810ab1991d7652c: crates/faultsim/tests/streaming.rs

crates/faultsim/tests/streaming.rs:
