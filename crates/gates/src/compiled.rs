//! Compiled netlist evaluation: a levelized straight-line op arena.
//!
//! The interpreted [`crate::eval::Evaluator`] walks the gate list and
//! dispatches a `match` per gate, because it must keep *every* gate
//! alive as a fault-injection site. Fault-free evaluation — and
//! evaluation under one **fixed** stuck-at fault — has no such
//! obligation, so a [`CompiledNet`] compiles a [`Netlist`] once into a
//! much smaller program:
//!
//! * **inversion absorption (NOT-fusion)** — every wire is represented
//!   as a complemented edge (`slot`, `inverted`), AIG-style, so `Not` /
//!   `Nand` / `Nor` / `Xnor` gates vanish into their consumers and the
//!   opcode set shrinks to `{And, AndNot, Or, Xor, Mux, Not}` (a `Not`
//!   op survives only where an inverted edge must materialize);
//! * **constant folding** — stuck-at wires and the builder's structural
//!   zeros (the multiplier pads its addend matrix with `WireId::ZERO`)
//!   propagate through their fanout cones at compile time, which is
//!   what makes *fault-specialized* circuits
//!   ([`CompiledNet::compile_with_fault`]) collapse: forcing one gate
//!   constant typically deletes a large cone;
//! * **dead-gate elimination** — gates not reachable from the primary
//!   outputs are dropped;
//! * **levelized batch scheduling** — surviving ops are counting-sorted
//!   by `(logic level, opcode)` and run as run-length batches: one
//!   opcode dispatch per *batch* instead of per gate, over pre-resolved
//!   input slots.
//!
//! Values stay 64-lane broadcast `u64`s (all lanes equal), so readback
//! uses bit 0. The compiled program is bit-identical to the interpreted
//! evaluator by construction, enforced by the differential corpus in
//! `tests/compiled_equiv.rs`.

use crate::netlist::{GateOp, Netlist};

/// Opcode of one compiled op. Inversions live on edges at compile time
/// and have been absorbed; `AndNot` computes `a & !b` so De Morgan
/// rewrites need no materialized inverter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    And,
    AndNot,
    Or,
    Xor,
    Mux,
    Not,
}

const OP_COUNT: usize = 6;

#[inline]
fn op_rank(op: Op) -> usize {
    match op {
        Op::And => 0,
        Op::AndNot => 1,
        Op::Or => 2,
        Op::Xor => 3,
        Op::Mux => 4,
        Op::Not => 5,
    }
}

/// A primary output of the compiled circuit: either a compile-time
/// constant or a (possibly inverted) slot of the value arena.
#[derive(Debug, Clone, Copy)]
enum OutRef {
    Const(bool),
    Slot { slot: u32, invert: bool },
}

/// A compiled, optionally fault-specialized netlist (see module docs).
#[derive(Debug, Clone)]
pub struct CompiledNet {
    n_inputs: usize,
    n_slots: usize,
    /// Run-length opcode batches over `args`, in execution order.
    batches: Vec<(Op, u32)>,
    /// Pre-resolved input slots per op: `[a, b, sel]` (unused trail
    /// entries are 0). Op *k* writes slot `n_inputs + k`.
    args: Vec<[u32; 3]>,
    outputs: Vec<OutRef>,
    source_gates: usize,
}

/// Reusable value arena for one [`CompiledNet`]. Keep one per thread:
/// the buffer is sized once and reused, keeping evaluation
/// allocation-free.
#[derive(Debug, Clone)]
pub struct CompiledExec {
    values: Vec<u64>,
}

/// Compile-time representation of a wire: a constant, or a complemented
/// edge onto a value (primary input or emitted op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Repr {
    Const(bool),
    Node { id: u32, inv: bool },
}

impl Repr {
    #[inline]
    fn not(self) -> Repr {
        match self {
            Repr::Const(c) => Repr::Const(!c),
            Repr::Node { id, inv } => Repr::Node { id, inv: !inv },
        }
    }
}

/// Emission state: values are numbered `0..n_inputs` for primary inputs
/// and `n_inputs..` for provisional ops (topological by construction).
struct Compiler {
    n_inputs: usize,
    ops: Vec<(Op, u32, u32, u32)>,
}

impl Compiler {
    fn node(&mut self, op: Op, a: u32, b: u32, sel: u32) -> Repr {
        let id = (self.n_inputs + self.ops.len()) as u32;
        self.ops.push((op, a, b, sel));
        Repr::Node { id, inv: false }
    }

    /// `x & y` with constant folding and inversion absorption.
    fn and(&mut self, x: Repr, y: Repr) -> Repr {
        match (x, y) {
            (Repr::Const(false), _) | (_, Repr::Const(false)) => Repr::Const(false),
            (Repr::Const(true), v) | (v, Repr::Const(true)) => v,
            (Repr::Node { id: ia, inv: va }, Repr::Node { id: ib, inv: vb }) => {
                if ia == ib {
                    return if va == vb { x } else { Repr::Const(false) };
                }
                match (va, vb) {
                    (false, false) => self.node(Op::And, ia, ib, 0),
                    (false, true) => self.node(Op::AndNot, ia, ib, 0),
                    (true, false) => self.node(Op::AndNot, ib, ia, 0),
                    // !a & !b = !(a | b): push the inversion to the edge.
                    (true, true) => self.node(Op::Or, ia, ib, 0).not(),
                }
            }
        }
    }

    /// `x | y` via De Morgan on [`Compiler::and`].
    fn or(&mut self, x: Repr, y: Repr) -> Repr {
        self.and(x.not(), y.not()).not()
    }

    /// `x ^ y`; input inversions fold into the output edge.
    fn xor(&mut self, x: Repr, y: Repr) -> Repr {
        match (x, y) {
            (Repr::Const(false), v) | (v, Repr::Const(false)) => v,
            (Repr::Const(true), v) | (v, Repr::Const(true)) => v.not(),
            (Repr::Node { id: ia, inv: va }, Repr::Node { id: ib, inv: vb }) => {
                if ia == ib {
                    return Repr::Const(va != vb);
                }
                let out = self.node(Op::Xor, ia, ib, 0);
                if va != vb {
                    out.not()
                } else {
                    out
                }
            }
        }
    }

    /// `s ? x : y` with every degenerate form folded.
    fn mux(&mut self, s: Repr, x: Repr, y: Repr) -> Repr {
        let (s, x, y) = match s {
            Repr::Const(true) => return x,
            Repr::Const(false) => return y,
            // An inverted select swaps the arms.
            Repr::Node { id, inv: true } => (Repr::Node { id, inv: false }, y, x),
            _ => (s, x, y),
        };
        match (x, y) {
            // s?1:y = s|y   s?0:y = !s&y   s?x:1 = !s|x   s?x:0 = s&x
            (Repr::Const(true), y) => self.or(s, y),
            (Repr::Const(false), y) => {
                let ns = s.not();
                self.and(ns, y)
            }
            (x, Repr::Const(true)) => {
                let ns = s.not();
                self.or(ns, x)
            }
            (x, Repr::Const(false)) => self.and(s, x),
            (Repr::Node { id: ia, inv: va }, Repr::Node { id: ib, inv: vb }) => {
                if ia == ib {
                    if va == vb {
                        return x;
                    }
                    // s?x:!x = xnor(s, x).
                    return self.xor(s, x).not();
                }
                if va == vb {
                    let Repr::Node { id: is, .. } = s else {
                        unreachable!("select constants folded above")
                    };
                    let m = self.node(Op::Mux, ia, ib, is);
                    return if va { m.not() } else { m };
                }
                // Mixed arm inversions: s?x:y = y ^ (s & (x ^ y)).
                let t = self.xor(x, y);
                let u = self.and(s, t);
                self.xor(y, u)
            }
        }
    }
}

impl CompiledNet {
    /// Compiles the fault-free circuit.
    pub fn compile(net: &Netlist) -> CompiledNet {
        CompiledNet::compile_inner(net, None)
    }

    /// Compiles a circuit specialized for one permanent stuck-at fault:
    /// the faulted gate's output is the constant `stuck_one`, and the
    /// constant propagates through its fanout cone at compile time.
    ///
    /// # Panics
    /// Panics if `gate` is outside the netlist.
    pub fn compile_with_fault(net: &Netlist, gate: u32, stuck_one: bool) -> CompiledNet {
        assert!(
            (gate as usize) < net.gate_count(),
            "fault on nonexistent gate"
        );
        CompiledNet::compile_inner(net, Some((gate, stuck_one)))
    }

    fn compile_inner(net: &Netlist, fault: Option<(u32, bool)>) -> CompiledNet {
        let n_in = net.input_count();
        let mut c = Compiler {
            n_inputs: n_in,
            ops: Vec::with_capacity(net.gate_count()),
        };
        // Repr of every original wire, filled in topological order.
        let mut reprs: Vec<Repr> = Vec::with_capacity(net.wire_count());
        reprs.push(Repr::Const(false));
        reprs.push(Repr::Const(true));
        for i in 0..n_in {
            reprs.push(Repr::Node {
                id: i as u32,
                inv: false,
            });
        }
        for (g, gate) in net.gates().iter().enumerate() {
            let r = if fault == Some((g as u32, true)) {
                Repr::Const(true)
            } else if fault == Some((g as u32, false)) {
                Repr::Const(false)
            } else {
                let a = reprs[gate.a.index()];
                let b = reprs[gate.b.index()];
                match gate.op {
                    GateOp::And => c.and(a, b),
                    GateOp::Or => c.or(a, b),
                    GateOp::Xor => c.xor(a, b),
                    GateOp::Nand => c.and(a, b).not(),
                    GateOp::Nor => c.or(a, b).not(),
                    GateOp::Xnor => c.xor(a, b).not(),
                    GateOp::Not => a.not(),
                    GateOp::Mux => {
                        let s = reprs[gate.sel.index()];
                        c.mux(s, a, b)
                    }
                }
            };
            reprs.push(r);
        }
        let out_reprs: Vec<Repr> = net.outputs().iter().map(|o| reprs[o.index()]).collect();

        // Dead-op elimination: mark live from the outputs, walking the
        // provisional ops backwards (args always reference smaller ids).
        let n_vals = n_in + c.ops.len();
        let mut live = vec![false; n_vals];
        for r in &out_reprs {
            if let Repr::Node { id, .. } = r {
                live[*id as usize] = true;
            }
        }
        for k in (0..c.ops.len()).rev() {
            if !live[n_in + k] {
                continue;
            }
            let (op, a, b, sel) = c.ops[k];
            live[a as usize] = true;
            if op != Op::Not {
                live[b as usize] = true;
            }
            if op == Op::Mux {
                live[sel as usize] = true;
            }
        }

        // Levelize the live ops (inputs are level 0) and counting-sort
        // them by (level, opcode): one stable pass builds the
        // straight-line schedule with maximal same-opcode runs per level.
        let mut level = vec![0u32; n_vals];
        let mut max_level = 0u32;
        for (k, &(op, a, b, sel)) in c.ops.iter().enumerate() {
            if !live[n_in + k] {
                continue;
            }
            let mut l = level[a as usize];
            if op != Op::Not {
                l = l.max(level[b as usize]);
            }
            if op == Op::Mux {
                l = l.max(level[sel as usize]);
            }
            level[n_in + k] = l + 1;
            max_level = max_level.max(l + 1);
        }
        let key_of = |k: usize| {
            let (op, ..) = c.ops[k];
            level[n_in + k] as usize * OP_COUNT + op_rank(op)
        };
        let n_keys = (max_level as usize + 1) * OP_COUNT;
        let mut counts = vec![0u32; n_keys + 1];
        for k in 0..c.ops.len() {
            if live[n_in + k] {
                counts[key_of(k) + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let n_live = counts[n_keys] as usize;
        let mut order = vec![0u32; n_live];
        for k in 0..c.ops.len() {
            if live[n_in + k] {
                let slot = &mut counts[key_of(k)];
                order[*slot as usize] = k as u32;
                *slot += 1;
            }
        }

        // Final slot assignment: inputs first, then scheduled ops. A
        // producer always has a strictly smaller level than its
        // consumers, so level-sorted assignment preserves topology.
        let mut slot_of = vec![u32::MAX; n_vals];
        for (i, s) in slot_of.iter_mut().enumerate().take(n_in) {
            *s = i as u32;
        }
        let mut args = Vec::with_capacity(n_live);
        let mut batches: Vec<(Op, u32)> = Vec::new();
        for (pos, &k) in order.iter().enumerate() {
            let (op, a, b, sel) = c.ops[k as usize];
            slot_of[n_in + k as usize] = (n_in + pos) as u32;
            args.push([
                slot_of[a as usize],
                if op == Op::Not {
                    0
                } else {
                    slot_of[b as usize]
                },
                if op == Op::Mux {
                    slot_of[sel as usize]
                } else {
                    0
                },
            ]);
            match batches.last_mut() {
                Some((last, len)) if *last == op => *len += 1,
                _ => batches.push((op, 1)),
            }
        }
        let outputs = out_reprs
            .iter()
            .map(|r| match *r {
                Repr::Const(v) => OutRef::Const(v),
                Repr::Node { id, inv } => OutRef::Slot {
                    slot: slot_of[id as usize],
                    invert: inv,
                },
            })
            .collect();
        CompiledNet {
            n_inputs: n_in,
            n_slots: n_in + n_live,
            batches,
            args,
            outputs,
            source_gates: net.gate_count(),
        }
    }

    /// Allocates a value arena sized for this circuit.
    pub fn exec(&self) -> CompiledExec {
        CompiledExec {
            values: vec![0; self.n_slots],
        }
    }

    /// Evaluates the circuit; input `i` takes its broadcast value from
    /// the closure.
    ///
    /// # Panics
    /// Panics if `ex` was allocated for a different circuit.
    pub fn run(&self, ex: &mut CompiledExec, input_bit: impl Fn(usize) -> bool) {
        assert_eq!(ex.values.len(), self.n_slots, "exec/circuit mismatch");
        let v = &mut ex.values;
        for (i, slot) in v.iter_mut().enumerate().take(self.n_inputs) {
            *slot = if input_bit(i) { u64::MAX } else { 0 };
        }
        let mut k = self.n_inputs;
        let mut i = 0usize;
        for &(op, len) in &self.batches {
            let end = i + len as usize;
            match op {
                Op::And => {
                    for &[a, b, _] in &self.args[i..end] {
                        v[k] = v[a as usize] & v[b as usize];
                        k += 1;
                    }
                }
                Op::AndNot => {
                    for &[a, b, _] in &self.args[i..end] {
                        v[k] = v[a as usize] & !v[b as usize];
                        k += 1;
                    }
                }
                Op::Or => {
                    for &[a, b, _] in &self.args[i..end] {
                        v[k] = v[a as usize] | v[b as usize];
                        k += 1;
                    }
                }
                Op::Xor => {
                    for &[a, b, _] in &self.args[i..end] {
                        v[k] = v[a as usize] ^ v[b as usize];
                        k += 1;
                    }
                }
                Op::Mux => {
                    for &[a, b, s] in &self.args[i..end] {
                        let sv = v[s as usize];
                        v[k] = (v[a as usize] & sv) | (v[b as usize] & !sv);
                        k += 1;
                    }
                }
                Op::Not => {
                    for &[a, _, _] in &self.args[i..end] {
                        v[k] = !v[a as usize];
                        k += 1;
                    }
                }
            }
            i = end;
        }
    }

    /// Number of primary outputs (matches the source netlist).
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Output `i` after [`CompiledNet::run`].
    #[inline]
    pub fn out_bit(&self, ex: &CompiledExec, i: usize) -> bool {
        match self.outputs[i] {
            OutRef::Const(v) => v,
            OutRef::Slot { slot, invert } => (ex.values[slot as usize] & 1 == 1) != invert,
        }
    }

    /// Collects outputs `[lo, lo + width)` (LSB first) into an integer.
    pub fn out_word(&self, ex: &CompiledExec, lo: usize, width: usize) -> u64 {
        debug_assert!(width <= 64);
        let mut v = 0u64;
        for i in 0..width {
            v |= (self.out_bit(ex, lo + i) as u64) << i;
        }
        v
    }

    /// Ops surviving folding and dead-gate elimination — the compiled
    /// circuit size that campaign telemetry reports per specialized
    /// fault.
    pub fn op_count(&self) -> usize {
        self.args.len()
    }

    /// Gates in the source netlist (for compression-ratio telemetry).
    pub fn source_gate_count(&self) -> usize {
        self.source_gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{bit_of, Evaluator, FaultSet};
    use crate::netlist::{NetlistBuilder, WireId};

    /// All eight gate ops, with constants and shared fanout, so every
    /// emission rule is exercised at least once.
    fn mixed_net() -> Netlist {
        let mut b = NetlistBuilder::new("mixed");
        let i0 = b.input();
        let i1 = b.input();
        let i2 = b.input();
        let n0 = b.not(i0);
        let a0 = b.and(n0, i1);
        let o0 = b.or(a0, WireId::ZERO);
        let x0 = b.xor(o0, i2);
        let nd = b.nand(x0, n0);
        let nr = b.nor(nd, i1);
        let xn = b.xnor(nr, a0);
        let m0 = b.mux(nd, xn, nr);
        let m1 = b.mux(i2, m0, WireId::ONE);
        let dead = b.and(i0, i1); // never reaches an output
        let _ = dead;
        b.finish(vec![x0, nd, m0, m1, WireId::ONE, i0])
    }

    #[test]
    fn compiled_matches_interpreter_on_mixed_net() {
        let net = mixed_net();
        let compiled = CompiledNet::compile(&net);
        let mut ev = Evaluator::new(&net);
        let mut ex = compiled.exec();
        for pat in 0u64..8 {
            ev.run(&net, |i| bit_of(pat, i), &FaultSet::none());
            compiled.run(&mut ex, |i| bit_of(pat, i));
            for (o, &w) in net.outputs().iter().enumerate() {
                assert_eq!(
                    compiled.out_bit(&ex, o),
                    ev.wire(w, 0),
                    "pattern {pat:03b} output {o}"
                );
            }
        }
    }

    #[test]
    fn fault_specialization_matches_forced_interpreter() {
        let net = mixed_net();
        let mut ev = Evaluator::new(&net);
        for g in 0..net.gate_count() as u32 {
            for stuck_one in [false, true] {
                let compiled = CompiledNet::compile_with_fault(&net, g, stuck_one);
                let mut ex = compiled.exec();
                for pat in 0u64..8 {
                    ev.run(&net, |i| bit_of(pat, i), &FaultSet::single(g, stuck_one));
                    compiled.run(&mut ex, |i| bit_of(pat, i));
                    for (o, &w) in net.outputs().iter().enumerate() {
                        assert_eq!(
                            compiled.out_bit(&ex, o),
                            ev.wire(w, 0),
                            "gate {g} s@{} pattern {pat:03b} output {o}",
                            stuck_one as u8
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn folding_shrinks_the_multiplier() {
        // The multiplier pads its addend matrix with structural zeros;
        // folding plus NOT-fusion must shrink it substantially.
        let net = crate::multiplier::int_multiplier().netlist();
        let compiled = CompiledNet::compile(net);
        assert!(
            compiled.op_count() < net.gate_count(),
            "compiled {} >= source {}",
            compiled.op_count(),
            net.gate_count()
        );
    }

    #[test]
    fn specialization_collapses_cones() {
        // A stuck-at on a late carry gate makes everything feeding it
        // dead; the specialized circuit must be smaller than the
        // fault-free compile is relative to its own source.
        let net = crate::adder::int_adder().netlist();
        let free = CompiledNet::compile(net).op_count();
        let specialized = CompiledNet::compile_with_fault(net, 5, true).op_count();
        assert!(specialized <= free, "{specialized} > {free}");
    }
}
