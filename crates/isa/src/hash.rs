//! Shared multiply-mix hasher for hot-path point-query maps.
//!
//! Several inner loops key `HashMap`s by small integer tuples — the
//! store-commit byte map in `harpo_uarch`, the operand-triple screening
//! memo in `harpo_faultsim`, the per-replay output memo in
//! `harpo_gates::FaultyFu`. None of these maps is exposed to untrusted
//! keys and none ever observes iteration order, so SipHash buys nothing
//! and costs an order of magnitude over a two-instruction multiply-mix.
//! This module is the one shared definition of that hasher so every hot
//! path uses the same, separately-tested mix.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-style multiplicative mixing constant (2⁶⁴/φ, forced odd).
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A multiply-mix [`Hasher`]: every written word is folded into the
/// state with an XOR followed by a multiplication by `MIX`. The
/// trailing multiply doubles as the finalizer — multiplying by an odd
/// constant is a bijection on every low-bit window, so sequential keys
/// spread across the table's low bits (see `sequential_keys_spread`).
#[derive(Debug, Default)]
pub struct MixHasher(u64);

impl Hasher for MixHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(MIX);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(MIX);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// [`BuildHasherDefault`] alias for [`MixHasher`].
pub type MixBuild = BuildHasherDefault<MixHasher>;

/// A `HashMap` using the multiply-mix hasher.
pub type MixMap<K, V> = HashMap<K, V, MixBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_tuple_keys() {
        let mut m: MixMap<(u64, u64, bool), u64> = MixMap::default();
        for i in 0..1000u64 {
            m.insert((i, i.wrapping_mul(MIX), i % 3 == 0), i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i, i.wrapping_mul(MIX), i % 3 == 0)), Some(&i));
        }
        assert_eq!(m.get(&(1, 2, false)), None);
    }

    #[test]
    fn sequential_keys_spread() {
        // Point-query maps index by the hash's low bits; sequential keys
        // must not collapse onto a handful of slots.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            let mut h = MixHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 63);
        }
        assert!(
            low_bits.len() > 48,
            "only {} distinct slots",
            low_bits.len()
        );
    }
}
