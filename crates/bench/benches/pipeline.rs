//! Criterion microbenchmarks of every Harpocrates pipeline stage —
//! generation, mutation, compilation (encode), microarchitectural
//! evaluation, coverage analysis and gate-level fault screening — so
//! performance regressions in the engine itself are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use harpo_core::Evaluator;
use harpo_coverage::TargetStructure;
use harpo_faultsim::screen_faults;
use harpo_gates::{GateFault, GradedUnit, UnitEvaluators};
use harpo_isa::program::Program;
use harpo_museqgen::{GenConstraints, Generator, Mutator};
use harpo_uarch::{OooCore, SimContext};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let gen = Generator::new(GenConstraints {
        n_insts: 1_000,
        ..GenConstraints::default()
    });
    let mutator = Mutator::new(gen.clone());
    let prog = gen.generate(7);
    let core = OooCore::default();

    c.bench_function("generate_1k_inst_program", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(gen.generate(seed))
        })
    });

    c.bench_function("mutate_1k_inst_program", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(mutator.mutate(&prog, seed))
        })
    });

    c.bench_function("encode_1k_inst_program", |b| {
        b.iter(|| black_box(prog.encode()))
    });

    c.bench_function("ooo_simulate_1k_inst", |b| {
        b.iter(|| black_box(core.simulate(&prog, 1_000_000).unwrap()))
    });

    let sim = core.simulate(&prog, 1_000_000).unwrap();
    c.bench_function("irf_ace_analysis", |b| {
        b.iter(|| black_box(TargetStructure::Irf.coverage(&sim.trace, core.config())))
    });
    c.bench_function("l1d_ace_analysis", |b| {
        b.iter(|| black_box(TargetStructure::L1d.coverage(&sim.trace, core.config())))
    });
    c.bench_function("ibr_intadd_analysis", |b| {
        b.iter(|| black_box(TargetStructure::IntAdder.coverage(&sim.trace, core.config())))
    });

    let faults: Vec<GateFault> = (0..64u32)
        .map(|g| GateFault {
            unit: GradedUnit::IntAdder,
            gate: g * 5 % GradedUnit::IntAdder.gate_count() as u32,
            stuck_one: g % 2 == 0,
        })
        .collect();
    c.bench_function("screen_64_adder_faults", |b| {
        let mut ev = UnitEvaluators::new();
        b.iter(|| {
            black_box(screen_faults(
                &sim.trace,
                GradedUnit::IntAdder,
                &faults,
                &mut ev,
            ))
        })
    });
}

/// The allocation-free / work-stealing / memo-cache paths added by the
/// performance-architecture work (DESIGN.md), benchmarked against their
/// allocating predecessors.
fn bench_perf_architecture(c: &mut Criterion) {
    let gen = Generator::new(GenConstraints {
        n_insts: 1_000,
        ..GenConstraints::default()
    });
    let prog = gen.generate(7);
    let core = OooCore::default();

    // Fresh context per run (the old `simulate` behaviour) vs one warm
    // context reused across runs.
    c.bench_function("simulate_fresh_context_1k_inst", |b| {
        b.iter(|| black_box(core.simulate(&prog, 1_000_000).unwrap()))
    });
    c.bench_function("simulate_into_warm_context_1k_inst", |b| {
        let mut ctx = SimContext::new();
        b.iter(|| {
            core.simulate_into(&prog, 1_000_000, &mut ctx).unwrap();
            black_box(ctx.result().unwrap().output.dyn_count)
        })
    });

    // Population evaluation throughput across thread counts.
    let popgen = Generator::new(GenConstraints {
        n_insts: 300,
        ..GenConstraints::default()
    });
    let pop: Vec<Program> = (0..64u64).map(|s| popgen.generate(s)).collect();
    let ev = Evaluator::new(OooCore::default(), TargetStructure::IntAdder);
    for threads in [1usize, 4, 8] {
        c.bench_function(&format!("evaluate_population_64x300_t{threads}"), |b| {
            b.iter(|| black_box(ev.evaluate_population(&pop, threads)))
        });
    }

    // A cache-hit-heavy round: every program already fingerprinted, so
    // the round is pure hashing + table lookups.
    c.bench_function("memo_round_64_programs_all_hits", |b| {
        let mut memo = std::collections::HashMap::new();
        for p in &pop {
            memo.insert(harpo_core::fingerprint(p), 0.5f64);
        }
        b.iter(|| {
            let mut acc = 0.0f64;
            for p in &pop {
                acc += memo[&harpo_core::fingerprint(p)];
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline, bench_perf_architecture
}
criterion_main!(pipeline);
