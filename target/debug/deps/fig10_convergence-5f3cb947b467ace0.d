/root/repo/target/debug/deps/fig10_convergence-5f3cb947b467ace0.d: crates/bench/src/bin/fig10_convergence.rs

/root/repo/target/debug/deps/fig10_convergence-5f3cb947b467ace0: crates/bench/src/bin/fig10_convergence.rs

crates/bench/src/bin/fig10_convergence.rs:
