/root/repo/target/debug/deps/rand-4489fe94c7c8493a.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4489fe94c7c8493a.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4489fe94c7c8493a.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
