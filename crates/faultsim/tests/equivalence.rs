//! Checkpointed-replay equivalence corpus.
//!
//! The checkpointed replay engine (golden trail seek + reconvergence
//! early-exit) is a pure performance transform: campaign tallies must be
//! **bit-identical** with checkpointing on and off, for every target
//! structure, over generated programs. This suite is the enforcement of
//! that invariant (and of thread-count determinism while we are at it).

use harpo_coverage::TargetStructure;
use harpo_faultsim::{measure_detection, CampaignConfig, CampaignResult, L1dProtection};
use harpo_isa::program::Program;
use harpo_museqgen::{GenConstraints, Generator};
use harpo_uarch::OooCore;

const STRUCTURES: [TargetStructure; 4] = [
    TargetStructure::Irf,
    TargetStructure::Xrf,
    TargetStructure::L1d,
    TargetStructure::IntAdder,
];

fn corpus() -> Vec<Program> {
    let mut progs = Vec::new();
    // Plain ALU programs, memory-heavy programs, and SSE programs: the
    // three plan families (reg flips, load flips + end corruption, xmm
    // flips) all need coverage.
    for (seed, n_insts, allow_sse, store_bias) in [
        (11u64, 120usize, false, 0.0f64),
        (23, 400, false, 0.35),
        (37, 900, true, 0.2),
        (53, 250, true, 0.5),
    ] {
        let c = GenConstraints {
            n_insts,
            allow_sse,
            store_bias,
            ..GenConstraints::default()
        };
        progs.push(Generator::new(c).generate(seed));
    }
    progs
}

fn cfg(interval: u64, threads: usize, l1d: L1dProtection) -> CampaignConfig {
    CampaignConfig {
        n_faults: 64,
        seed: 0xE9_01AD,
        threads,
        cap: 10_000_000,
        l1d_protection: l1d,
        checkpoint_interval: interval,
        ..CampaignConfig::default()
    }
}

/// Strips the perf-only counters that legitimately differ between the
/// checkpointed and full paths, keeping every outcome tally.
fn outcome_tallies(r: &CampaignResult) -> CampaignResult {
    let mut t = *r;
    t.replay_insts = 0;
    t.replay_insts_skipped = 0;
    t.checkpoint_hits = 0;
    t.early_exits = 0;
    // Memo traffic scales with replay length, which the checkpointed
    // engine legitimately shortens; the specialized circuits themselves
    // are per-fault and identical on both paths.
    t.fu_memo_hits = 0;
    t.fu_memo_lookups = 0;
    t.replay_len = Default::default();
    // The cost matrix's per-class fault counts must match, but its
    // per-class replay instruction counts are the same perf counter as
    // `replay_insts` above, split by outcome.
    for cell in t.cost.cells.iter_mut() {
        cell.replay_insts = 0;
    }
    t
}

#[test]
fn checkpointed_campaigns_match_full_campaigns_bit_for_bit() {
    let core = OooCore::default();
    let mut any_hit = false;
    let mut any_exit = false;
    for (pi, p) in corpus().iter().enumerate() {
        for structure in STRUCTURES {
            let full = measure_detection(p, structure, &core, &cfg(0, 2, L1dProtection::None))
                .expect("golden run");
            let ck = measure_detection(p, structure, &core, &cfg(64, 2, L1dProtection::None))
                .expect("golden run");
            assert_eq!(
                outcome_tallies(&full),
                outcome_tallies(&ck),
                "program {pi} / {structure}: checkpointing changed the tallies"
            );
            any_hit |= ck.checkpoint_hits > 0;
            any_exit |= ck.early_exits > 0;
            assert_eq!(full.checkpoint_hits, 0);
            assert_eq!(full.early_exits, 0);
            assert_eq!(full.replay_insts_skipped, 0);
        }
    }
    assert!(any_hit, "corpus never exercised a checkpoint seek");
    assert!(
        any_exit,
        "corpus never exercised a reconvergence early-exit"
    );
}

#[test]
fn gate_pipelines_agree_on_outcomes() {
    // Three gate pipelines grade every campaign identically: the legacy
    // interpreted engine, the compiled engine with cohort demotion off,
    // and the default compiled engine with cohort demotion on. The
    // first two are bit-identical (same replays, same instruction
    // counts — only the engine-internal counters differ); the third may
    // trade replays for demotions but never changes an outcome.
    let core = OooCore::default();
    let mut any_demoted = false;
    for (pi, p) in corpus().iter().enumerate() {
        for structure in [TargetStructure::IntAdder, TargetStructure::IntMultiplier] {
            let legacy = measure_detection(
                p,
                structure,
                &core,
                &CampaignConfig {
                    gate_legacy: true,
                    ..cfg(64, 2, L1dProtection::None)
                },
            )
            .expect("golden run");
            let compiled = measure_detection(
                p,
                structure,
                &core,
                &CampaignConfig {
                    cohort_demotion: false,
                    ..cfg(64, 2, L1dProtection::None)
                },
            )
            .expect("golden run");
            let cohort = measure_detection(p, structure, &core, &cfg(64, 2, L1dProtection::None))
                .expect("golden run");
            let engine_free = |r: &CampaignResult| {
                let mut t = outcome_tallies(r);
                t.specialized_ops = 0;
                t
            };
            assert_eq!(
                engine_free(&legacy),
                engine_free(&compiled),
                "program {pi} / {structure}: engine changed the tallies"
            );
            assert_eq!(legacy.replay_insts, compiled.replay_insts);
            assert_eq!(legacy.specialized_ops, 0);
            assert_eq!(legacy.fu_memo_lookups, 0);
            // Cohort demotion: outcomes and the screened fast path are
            // untouched; each demotion removes exactly one replay.
            for (l, c) in [
                (legacy.injected, cohort.injected),
                (legacy.sdc, cohort.sdc),
                (legacy.crash, cohort.crash),
                (legacy.masked, cohort.masked),
                (legacy.corrected, cohort.corrected),
                (legacy.screened, cohort.screened),
                (legacy.masked_fast_path, cohort.masked_fast_path),
            ] {
                assert_eq!(l, c, "program {pi} / {structure}: cohorts changed a tally");
            }
            assert_eq!(
                cohort.replays + cohort.cohort_demoted,
                legacy.replays,
                "program {pi} / {structure}: demotions must map 1:1 onto skipped replays"
            );
            any_demoted |= cohort.cohort_demoted > 0;
        }
    }
    // Generated corpus programs chain every result into the signature,
    // so demotions are rare there; a program whose adds all land in
    // overwritten registers exercises the demotion path end to end.
    let dead = dead_adder_program();
    let legacy = measure_detection(
        &dead,
        TargetStructure::IntAdder,
        &core,
        &CampaignConfig {
            gate_legacy: true,
            ..cfg(64, 2, L1dProtection::None)
        },
    )
    .expect("golden run");
    let cohort = measure_detection(
        &dead,
        TargetStructure::IntAdder,
        &core,
        &cfg(64, 2, L1dProtection::None),
    )
    .expect("golden run");
    assert_eq!(legacy.sdc, cohort.sdc, "demotion changed an SDC tally");
    assert_eq!(legacy.crash, cohort.crash);
    assert_eq!(legacy.masked, cohort.masked);
    assert_eq!(legacy.masked_fast_path, cohort.masked_fast_path);
    assert_eq!(cohort.replays + cohort.cohort_demoted, legacy.replays);
    any_demoted |= cohort.cohort_demoted > 0;
    assert!(any_demoted, "nothing exercised a cohort demotion");
}

/// Adds whose results are overwritten unread and whose flags die under
/// an ungraded xor: activated adder faults demote instead of replaying.
fn dead_adder_program() -> Program {
    use harpo_isa::asm::Asm;
    use harpo_isa::form::Mnemonic;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::B64;
    let mut a = Asm::new("deadadds");
    a.mov_ri64(Rax, 0xFFFF_FFFF_0F0F_5A5A);
    a.mov_ri64(Rbx, 0x0123_4567_89AB_CDEF);
    for _ in 0..16 {
        a.mov_ri64(Rcx, 0x00FF_00FF_00FF_00FF);
        a.add_rr(B64, Rcx, Rax);
        a.mov_ri64(Rcx, 0xAAAA_5555_AAAA_5555);
        a.add_rr(B64, Rcx, Rbx);
    }
    a.mov_ri64(Rcx, 7);
    a.op_rr(Mnemonic::Xor, B64, Rdx, Rax);
    a.halt();
    a.finish().unwrap()
}

#[test]
fn forensics_do_not_change_tallies() {
    let core = OooCore::default();
    let p = &corpus()[0];
    for structure in STRUCTURES {
        let plain = measure_detection(p, structure, &core, &cfg(64, 2, L1dProtection::None))
            .expect("golden run");
        let with = measure_detection(
            p,
            structure,
            &core,
            &CampaignConfig {
                forensics: true,
                ..cfg(64, 2, L1dProtection::None)
            },
        )
        .expect("golden run");
        assert_eq!(plain, with, "{structure}: forensics changed the result");
    }
}

#[test]
fn secded_tallies_unchanged_by_checkpointing() {
    let core = OooCore::default();
    let p = &corpus()[1];
    let full = measure_detection(
        p,
        TargetStructure::L1d,
        &core,
        &cfg(0, 2, L1dProtection::Secded),
    )
    .expect("golden run");
    let ck = measure_detection(
        p,
        TargetStructure::L1d,
        &core,
        &cfg(64, 2, L1dProtection::Secded),
    )
    .expect("golden run");
    assert_eq!(outcome_tallies(&full), outcome_tallies(&ck));
    assert_eq!(full.corrected, ck.corrected);
}

#[test]
fn thread_count_does_not_change_results() {
    let core = OooCore::default();
    let p = &corpus()[2];
    for structure in STRUCTURES {
        let one = measure_detection(p, structure, &core, &cfg(64, 1, L1dProtection::None))
            .expect("golden run");
        let three = measure_detection(p, structure, &core, &cfg(64, 3, L1dProtection::None))
            .expect("golden run");
        assert_eq!(one, three, "{structure}: thread count changed the result");
    }
}
