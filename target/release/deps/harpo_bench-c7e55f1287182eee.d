/root/repo/target/release/deps/harpo_bench-c7e55f1287182eee.d: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/release/deps/harpo_bench-c7e55f1287182eee: crates/bench/src/lib.rs crates/bench/src/diff.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
