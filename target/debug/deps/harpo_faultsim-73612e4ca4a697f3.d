/root/repo/target/debug/deps/harpo_faultsim-73612e4ca4a697f3.d: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/cohort.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_faultsim-73612e4ca4a697f3.rmeta: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/cohort.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs Cargo.toml

crates/faultsim/src/lib.rs:
crates/faultsim/src/autopsy.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/checkpoint.rs:
crates/faultsim/src/cohort.rs:
crates/faultsim/src/fault.rs:
crates/faultsim/src/gate.rs:
crates/faultsim/src/outcome.rs:
crates/faultsim/src/plan.rs:
crates/faultsim/src/replay.rs:
crates/faultsim/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
