/root/repo/target/debug/deps/table1_loopstep-c853b1fe81d0adcb.d: crates/bench/src/bin/table1_loopstep.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_loopstep-c853b1fe81d0adcb.rmeta: crates/bench/src/bin/table1_loopstep.rs Cargo.toml

crates/bench/src/bin/table1_loopstep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
