/root/repo/target/release/deps/table1_loopstep-2536a2753532dd00.d: crates/bench/src/bin/table1_loopstep.rs

/root/repo/target/release/deps/table1_loopstep-2536a2753532dd00: crates/bench/src/bin/table1_loopstep.rs

crates/bench/src/bin/table1_loopstep.rs:
