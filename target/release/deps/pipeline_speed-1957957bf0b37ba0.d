/root/repo/target/release/deps/pipeline_speed-1957957bf0b37ba0.d: crates/bench/src/bin/pipeline_speed.rs

/root/repo/target/release/deps/pipeline_speed-1957957bf0b37ba0: crates/bench/src/bin/pipeline_speed.rs

crates/bench/src/bin/pipeline_speed.rs:
