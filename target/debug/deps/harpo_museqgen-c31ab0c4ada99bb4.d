/root/repo/target/debug/deps/harpo_museqgen-c31ab0c4ada99bb4.d: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/debug/deps/harpo_museqgen-c31ab0c4ada99bb4: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

crates/museqgen/src/lib.rs:
crates/museqgen/src/constraints.rs:
crates/museqgen/src/generator.rs:
crates/museqgen/src/mutate.rs:
