//! The SiliFuzz-like baseline: hardware-agnostic fuzzing by proxy
//! (paper §III-A1, [SiliFuzz, Serebryany et al. 2021]).
//!
//! Faithful to the original's defining properties:
//!
//! * programs are **raw byte sequences** mutated with no notion of the
//!   ISA encoding (bit flips, byte splices, inserts, deletes);
//! * feedback is **software coverage of a proxy** — here the HX86
//!   decoder: an input is interesting if it reaches decoder paths
//!   (instruction forms) the corpus has not seen;
//! * inputs are filtered to **runnable, deterministic snapshots**
//!   (≤ 100 bytes); a large fraction of mutants is discarded as
//!   non-runnable, matching the paper's ≈2/3 observation;
//! * snapshots are aggregated into a single ~10K-instruction test for
//!   fault-injection grading (§III-A1).

use harpo_isa::decode_stream;
use harpo_isa::exec::Machine;
use harpo_isa::form::Catalog;
use harpo_isa::fu::NativeFu;
use harpo_isa::inst::Inst;
use harpo_isa::mem::{MemImage, DATA_BASE};
use harpo_isa::program::{Program, RegInit};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Fuzzing session parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiliFuzzConfig {
    /// RNG seed.
    pub seed: u64,
    /// Mutation/selection iterations.
    pub iterations: usize,
    /// Maximum snapshot size in bytes (the paper's 100-byte cap).
    pub snapshot_max_bytes: usize,
    /// Dynamic-instruction cap for the runnability check.
    pub check_cap: u64,
}

impl Default for SiliFuzzConfig {
    fn default() -> Self {
        SiliFuzzConfig {
            seed: 0x5111_F022,
            iterations: 20_000,
            snapshot_max_bytes: 100,
            check_cap: 10_000,
        }
    }
}

/// A retained corpus entry: a runnable, deterministic byte snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// The raw bytes (what the fuzzer actually mutates).
    pub bytes: Vec<u8>,
    /// Its decoding (cached for aggregation).
    pub insts: Vec<Inst>,
}

/// Session statistics (feeds the §VI-A rate comparison).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzStats {
    /// Candidate inputs produced.
    pub inputs: u64,
    /// Inputs that fully decoded.
    pub decoded: u64,
    /// Inputs that also ran deterministically without crashing.
    pub runnable: u64,
    /// Inputs retained for new proxy coverage.
    pub retained: u64,
    /// Total runnable instructions accumulated (over runnable inputs).
    pub runnable_instructions: u64,
}

impl FuzzStats {
    /// Fraction of inputs discarded as non-runnable — the paper reports
    /// about two thirds for SiliFuzz.
    pub fn discard_rate(&self) -> f64 {
        if self.inputs == 0 {
            0.0
        } else {
            1.0 - self.runnable as f64 / self.inputs as f64
        }
    }
}

/// The fuzzing session.
#[derive(Debug)]
pub struct SiliFuzz {
    cfg: SiliFuzzConfig,
    corpus: Vec<Snapshot>,
    seen_forms: HashSet<u16>,
    stats: FuzzStats,
    rng: StdRng,
}

impl SiliFuzz {
    /// Starts a session.
    pub fn new(cfg: SiliFuzzConfig) -> SiliFuzz {
        let rng = StdRng::seed_from_u64(cfg.seed);
        SiliFuzz {
            cfg,
            corpus: Vec::new(),
            seen_forms: HashSet::new(),
            stats: FuzzStats::default(),
            rng,
        }
    }

    /// The snapshot environment: every GPR points into the data region
    /// (SiliFuzz snapshots capture their memory mappings so random
    /// base+disp accesses have a chance of landing in mapped memory).
    fn snapshot_env() -> (RegInit, MemImage) {
        let mut ri = RegInit::spread(32 * 1024, 0x5111);
        for g in ri.gprs.iter_mut() {
            // Centre every register so ±32 KiB displacements often hit.
            *g = DATA_BASE + 16 * 1024;
        }
        let mem = MemImage {
            data_size: 48 * 1024,
            stack_size: 8 * 1024,
            fill_seed: 0x5111,
            patches: Vec::new(),
        };
        (ri, mem)
    }

    fn wrap(insts: Vec<Inst>, name: String) -> Program {
        let (reg_init, mem) = Self::snapshot_env();
        let mut insts = insts;
        insts.push(Inst::halt());
        Program {
            name,
            insts,
            reg_init,
            mem,
            provenance: Default::default(),
        }
    }

    /// Byte-level mutation with no ISA knowledge.
    fn mutate_bytes(&mut self, base: &[u8]) -> Vec<u8> {
        let mut b = base.to_vec();
        if b.is_empty() {
            b = (0..self.rng.random_range(4..32))
                .map(|_| self.rng.random())
                .collect();
        }
        for _ in 0..self.rng.random_range(1..4) {
            match self.rng.random_range(0..4) {
                0 => {
                    // Bit flip.
                    let i = self.rng.random_range(0..b.len());
                    b[i] ^= 1 << self.rng.random_range(0..8);
                }
                1 => {
                    // Insert a random byte.
                    if b.len() < self.cfg.snapshot_max_bytes {
                        let i = self.rng.random_range(0..=b.len());
                        b.insert(i, self.rng.random());
                    }
                }
                2 => {
                    // Delete a byte.
                    if b.len() > 2 {
                        let i = self.rng.random_range(0..b.len());
                        b.remove(i);
                    }
                }
                _ => {
                    // Splice a slice from another corpus entry.
                    if let Some(other) = self.corpus.choose(&mut self.rng) {
                        let ob = &other.bytes;
                        if !ob.is_empty() {
                            let start = self.rng.random_range(0..ob.len());
                            let len = self.rng.random_range(1..=(ob.len() - start).min(16));
                            let at = self.rng.random_range(0..=b.len());
                            let mut nb = b[..at].to_vec();
                            nb.extend_from_slice(&ob[start..start + len]);
                            nb.extend_from_slice(&b[at..]);
                            b = nb;
                        }
                    }
                }
            }
        }
        b.truncate(self.cfg.snapshot_max_bytes);
        b
    }

    /// One fuzzing step: mutate, decode, filter, maybe retain.
    pub fn step(&mut self) {
        let parent = self
            .corpus
            .choose(&mut self.rng)
            .map(|s| s.bytes.clone())
            .unwrap_or_default();
        let bytes = self.mutate_bytes(&parent);
        self.stats.inputs += 1;

        // Proxy stage 1: the decoder.
        let Ok(insts) = decode_stream(&bytes) else {
            return;
        };
        if insts.is_empty() {
            return;
        }
        self.stats.decoded += 1;

        // Deterministic-instruction filter (as SiliFuzz excludes RDTSC &
        // co. from snapshots).
        let cat = Catalog::get();
        if insts.iter().any(|i| !cat.form(i.form).deterministic) {
            return;
        }

        // Runnability check: execute the snapshot in its environment.
        let prog = Self::wrap(insts.clone(), "snapshot-check".into());
        let mut m = Machine::new(&prog, NativeFu);
        if m.run(self.cfg.check_cap).is_err() {
            return;
        }
        self.stats.runnable += 1;
        self.stats.runnable_instructions += insts.len() as u64;

        // Proxy coverage: new decoder paths → retain.
        let mut novel = false;
        for i in &insts {
            novel |= self.seen_forms.insert(i.form.0);
        }
        if novel || self.corpus.len() < 8 {
            self.stats.retained += 1;
            self.corpus.push(Snapshot { bytes, insts });
        }
    }

    /// Runs the configured number of iterations.
    pub fn run(&mut self) {
        for _ in 0..self.cfg.iterations {
            self.step();
        }
    }

    /// Session statistics.
    pub fn stats(&self) -> &FuzzStats {
        &self.stats
    }

    /// The retained corpus.
    pub fn corpus(&self) -> &[Snapshot] {
        &self.corpus
    }

    /// Aggregates corpus snapshots into one test of about `n_insts`
    /// instructions (the grading vehicle of §III-A1). Snapshots whose
    /// concatenation would crash are skipped, so the aggregate is
    /// runnable end to end.
    pub fn aggregate(&self, n_insts: usize) -> Program {
        let mut insts: Vec<Inst> = Vec::with_capacity(n_insts);
        let mut round = 0usize;
        'fill: loop {
            let before = insts.len();
            for (si, s) in self.corpus.iter().enumerate() {
                if insts.len() >= n_insts {
                    break 'fill;
                }
                let mut candidate = insts.clone();
                candidate.extend(s.insts.iter().take(n_insts - insts.len()).copied());
                let prog = Self::wrap(candidate.clone(), format!("agg-try-{round}-{si}"));
                let mut m = Machine::new(&prog, NativeFu);
                if m.run(10 * n_insts as u64 + 10_000).is_ok() {
                    insts = candidate;
                }
            }
            round += 1;
            if insts.len() == before {
                break; // no snapshot extends the test further
            }
        }
        Self::wrap(insts, "silifuzz-aggregate".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(iters: usize) -> SiliFuzz {
        let mut s = SiliFuzz::new(SiliFuzzConfig {
            seed: 7,
            iterations: iters,
            ..SiliFuzzConfig::default()
        });
        s.run();
        s
    }

    #[test]
    fn fuzzing_builds_a_corpus() {
        let s = session(4_000);
        assert!(!s.corpus().is_empty(), "no snapshots retained");
        assert!(s.stats().runnable > 0);
        assert!(s.stats().runnable <= s.stats().decoded);
        assert!(s.stats().decoded <= s.stats().inputs);
    }

    #[test]
    fn discard_rate_is_substantial() {
        // The defining SiliFuzz property: most byte-level mutants are not
        // runnable (the paper reports ≈2/3 discarded).
        let s = session(4_000);
        let rate = s.stats().discard_rate();
        assert!(
            rate > 0.3,
            "byte fuzzing should discard many inputs, got {rate:.2}"
        );
    }

    #[test]
    fn snapshots_respect_size_cap() {
        let s = session(3_000);
        for snap in s.corpus() {
            assert!(snap.bytes.len() <= 100);
        }
    }

    #[test]
    fn aggregate_runs_cleanly() {
        let s = session(3_000);
        let test = s.aggregate(500);
        assert!(test.len() > 1, "aggregate should contain instructions");
        let mut m = Machine::new(&test, NativeFu);
        let out = m.run(1_000_000).expect("aggregate must be runnable");
        assert_eq!(out.dyn_count as usize, test.len());
    }

    #[test]
    fn session_is_deterministic() {
        let a = session(1_000);
        let b = session(1_000);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.corpus().len(), b.corpus().len());
    }
}
