//! Gate-level fault injection in functional units.
//!
//! Permanent stuck-at faults follow a two-stage flow:
//!
//! 1. **activation screening** — the packed 64-lane evaluator replays the
//!    golden run's operand stream through the unit's netlist, grading 64
//!    candidate faults per pass; faults whose output never differs from
//!    the golden result over the whole run are **Masked** without any
//!    functional replay;
//! 2. **propagation replay** — activated faults get a full functional
//!    replay with [`harpo_gates::FaultyFu`] substituting the faulty
//!    netlist on every pass through the defective unit, so second-order
//!    effects (corrupted values re-entering the unit with *different*
//!    operands) are modelled exactly.
//!
//! Intermittent faults assert the stuck-at only within a dynamic-
//! instruction burst, toggling the provider between steps.

use crate::outcome::FaultOutcome;
use crate::replay::ReplayCtx;
use harpo_gates::{screen_activation, FaultyFu, GateFault, GradedUnit, UnitEvaluators};
use harpo_isa::exec::Machine;
use harpo_isa::form::FuKind;
use harpo_isa::program::Program;
use harpo_isa::state::Signature;
use harpo_uarch::ExecutionTrace;

/// The `FuKind` whose passes feed a graded unit.
pub fn fu_kind_of(unit: GradedUnit) -> FuKind {
    match unit {
        GradedUnit::IntAdder => FuKind::IntAdd,
        GradedUnit::IntMultiplier => FuKind::IntMul,
        GradedUnit::FpAdder => FuKind::FpAdd,
        GradedUnit::FpMultiplier => FuKind::FpMul,
    }
}

/// Screens a batch of candidate faults (≤ 64) against the golden operand
/// stream; `activated[i]` is set if fault `i` ever changes the unit's
/// output during the run.
pub fn screen_faults(
    trace: &ExecutionTrace,
    unit: GradedUnit,
    faults: &[GateFault],
    ev: &mut UnitEvaluators,
) -> Vec<bool> {
    assert!(faults.len() <= 64);
    let pairs: Vec<(u32, bool)> = faults.iter().map(|f| (f.gate, f.stuck_one)).collect();
    let mut activated = vec![false; faults.len()];
    let mut scratch = vec![false; faults.len()];
    let kind = fu_kind_of(unit);
    for op in trace.fu_ops_of(kind) {
        screen_activation(unit, ev, op.a, op.b, op.cin, &pairs, &mut scratch);
        let mut all = true;
        for i in 0..faults.len() {
            activated[i] |= scratch[i];
            all &= activated[i];
        }
        if all {
            break; // every candidate already activated
        }
    }
    activated
}

/// Full propagation replay of one permanent gate fault.
pub fn replay_gate_permanent(
    prog: &Program,
    fault: GateFault,
    golden: &Signature,
    cap: u64,
) -> FaultOutcome {
    replay_gate_permanent_counted(prog, fault, golden, cap).0
}

/// [`replay_gate_permanent`] variant that also reports the dynamic
/// instructions the faulty run executed — the unit of replay cost that
/// campaign telemetry aggregates.
pub fn replay_gate_permanent_counted(
    prog: &Program,
    fault: GateFault,
    golden: &Signature,
    cap: u64,
) -> (FaultOutcome, u64) {
    replay_gate_permanent_counted_ctx(prog, fault, golden, cap, &mut ReplayCtx::new())
}

/// [`replay_gate_permanent_counted`] variant that recycles the machine's
/// memory buffer through `ctx` across replays.
pub fn replay_gate_permanent_counted_ctx(
    prog: &Program,
    fault: GateFault,
    golden: &Signature,
    cap: u64,
    ctx: &mut ReplayCtx,
) -> (FaultOutcome, u64) {
    let mut m = match ctx.take_mem() {
        Some(mem) => Machine::new_in(prog, FaultyFu::new(fault), mem),
        None => Machine::new(prog, FaultyFu::new(fault)),
    };
    let outcome = match m.run(cap) {
        Err(_) => FaultOutcome::Crash,
        Ok(out) => {
            if out.signature == *golden {
                FaultOutcome::Masked
            } else {
                FaultOutcome::Sdc
            }
        }
    };
    let insts = m.dyn_count();
    ctx.park_mem(m.into_memory());
    (outcome, insts)
}

/// Propagation replay of an intermittent gate fault asserted only for
/// dynamic instructions in `[from_dyn, to_dyn)`.
pub fn replay_gate_intermittent(
    prog: &Program,
    fault: GateFault,
    from_dyn: u64,
    to_dyn: u64,
    golden: &Signature,
    cap: u64,
) -> FaultOutcome {
    let mut m = Machine::new(prog, FaultyFu::new(fault));
    loop {
        let dyn_idx = m.dyn_count();
        if dyn_idx >= cap {
            return FaultOutcome::Crash;
        }
        m.fu_mut().active = dyn_idx >= from_dyn && dyn_idx < to_dyn;
        match m.step() {
            Err(_) => return FaultOutcome::Crash,
            Ok(None) => break,
            Ok(Some(_)) => {}
        }
    }
    if m.output().signature == *golden {
        FaultOutcome::Masked
    } else {
        FaultOutcome::Sdc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::asm::Asm;
    use harpo_isa::fu::NativeFu;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;
    use harpo_uarch::OooCore;

    fn adder_heavy() -> Program {
        let mut a = Asm::new("adds");
        a.mov_ri64(Rax, 0x0123_4567_89AB_CDEF);
        a.mov_ri64(Rbx, 0xFEDC_BA98_7654_3210);
        for _ in 0..32 {
            a.add_rr(B64, Rcx, Rax);
            a.add_rr(B64, Rdx, Rbx);
            a.add_rr(B64, Rcx, Rdx);
        }
        a.halt();
        a.finish().unwrap()
    }

    fn golden_of(p: &Program) -> (Signature, ExecutionTrace) {
        let r = OooCore::default().simulate(p, 1_000_000).unwrap();
        (r.output.signature, r.trace)
    }

    #[test]
    fn screening_agrees_with_replay_for_adder() {
        let p = adder_heavy();
        let (golden, trace) = golden_of(&p);
        let faults: Vec<GateFault> = (0..64u32)
            .map(|i| GateFault {
                unit: GradedUnit::IntAdder,
                gate: (i * 5) % GradedUnit::IntAdder.gate_count() as u32,
                stuck_one: i % 2 == 0,
            })
            .collect();
        let mut ev = UnitEvaluators::new();
        let act = screen_faults(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        let mut some_active = false;
        for (i, f) in faults.iter().enumerate() {
            let out = replay_gate_permanent(&p, *f, &golden, 1_000_000);
            if !act[i] {
                // Never-activated faults must be masked.
                assert_eq!(
                    out,
                    FaultOutcome::Masked,
                    "fault {:?} inactive but {:?}",
                    f,
                    out
                );
            } else {
                some_active = true;
            }
        }
        assert!(some_active, "wide operands must activate some faults");
    }

    #[test]
    fn narrow_operands_leave_high_gates_inactive() {
        // With small operands the upper carry chain never toggles, so
        // stuck-at-0 faults there never activate and the screen proves
        // them Masked without a replay.
        let mut a = Asm::new("narrow");
        a.mov_ri(B64, Rax, 0xFF);
        for _ in 0..20 {
            a.add_ri(B8, Rbx, 3);
            a.add_rr(B8, Rbx, Rax);
        }
        a.halt();
        let p = a.finish().unwrap();
        let (_, trace) = golden_of(&p);
        // Gates of the top bits: the ripple adder allocates 5 gates per
        // bit from LSB, so bit-60 logic sits near gate 300.
        let faults: Vec<GateFault> = (300..320u32)
            .map(|g| GateFault {
                unit: GradedUnit::IntAdder,
                gate: g,
                stuck_one: false,
            })
            .collect();
        let mut ev = UnitEvaluators::new();
        let act = screen_faults(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        assert!(act.iter().all(|&x| !x), "high stuck-at-0 gates inactive");
    }

    #[test]
    fn adder_fault_detected_by_add_chain() {
        let p = adder_heavy();
        let (golden, trace) = golden_of(&p);
        // Find a fault that activates, then check it is detected (the
        // chain propagates every sum into the output registers).
        let faults: Vec<GateFault> = (0..64u32)
            .map(|g| GateFault {
                unit: GradedUnit::IntAdder,
                gate: g,
                stuck_one: true,
            })
            .collect();
        let mut ev = UnitEvaluators::new();
        let act = screen_faults(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        let idx = act.iter().position(|&x| x).expect("some fault activates");
        let out = replay_gate_permanent(&p, faults[idx], &golden, 1_000_000);
        assert_eq!(out, FaultOutcome::Sdc);
    }

    #[test]
    fn mul_fault_invisible_to_add_only_program() {
        let p = adder_heavy();
        let (golden, _) = golden_of(&p);
        let f = GateFault {
            unit: GradedUnit::IntMultiplier,
            gate: 1000,
            stuck_one: true,
        };
        assert_eq!(
            replay_gate_permanent(&p, f, &golden, 1_000_000),
            FaultOutcome::Masked
        );
    }

    #[test]
    fn intermittent_outside_burst_is_masked() {
        let p = adder_heavy();
        let (golden, trace) = golden_of(&p);
        // Pick an activating fault.
        let faults: Vec<GateFault> = (0..64u32)
            .map(|g| GateFault {
                unit: GradedUnit::IntAdder,
                gate: g,
                stuck_one: true,
            })
            .collect();
        let mut ev = UnitEvaluators::new();
        let act = screen_faults(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        let f = faults[act.iter().position(|&x| x).unwrap()];
        // Burst entirely after the program end: no effect.
        let out = replay_gate_intermittent(&p, f, 1_000_000, 2_000_000, &golden, 10_000_000);
        assert_eq!(out, FaultOutcome::Masked);
        // Burst covering the whole run behaves like a permanent fault.
        let out = replay_gate_intermittent(&p, f, 0, u64::MAX, &golden, 10_000_000);
        assert_eq!(out, replay_gate_permanent(&p, f, &golden, 1_000_000));
    }

    #[test]
    fn golden_machine_matches_ooo_output() {
        // Machine (functional) and OooCore (timed) must agree on outputs.
        let p = adder_heavy();
        let (golden, _) = golden_of(&p);
        let m = Machine::new(&p, NativeFu).run(1_000_000).unwrap();
        assert_eq!(m.signature, golden);
    }
}
