//! Fault-injection outcome taxonomy and campaign tallies (paper §II-E).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The observable outcome of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The fault never propagated to software-visible state (including
    /// faults proven dead from the golden trace without a replay).
    Masked,
    /// The program completed with a different output signature — a
    /// silent data corruption, which the test program *detects* by
    /// comparing signatures.
    Sdc,
    /// The faulty run trapped (wild address, divide error, ...).
    Crash,
    /// A hardware protection scheme (parity/ECC) corrected the fault
    /// before it became architecturally visible (paper §II-E: a single
    /// bit flip in a SECDED cache is "Masked (Corrected)").
    Corrected,
}

impl FaultOutcome {
    /// Whether a checking test program detects this outcome (SDC via
    /// signature mismatch, crash via the trap itself).
    pub fn detected(self) -> bool {
        !matches!(self, FaultOutcome::Masked | FaultOutcome::Corrected)
    }
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultOutcome::Masked => "Masked",
            FaultOutcome::Sdc => "SDC",
            FaultOutcome::Crash => "Crash",
            FaultOutcome::Corrected => "Corrected",
        };
        f.write_str(s)
    }
}

/// Aggregate result of a statistical fault-injection campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Faults injected (N).
    pub injected: u64,
    /// Faults whose run produced a corrupted output.
    pub sdc: u64,
    /// Faults whose run crashed.
    pub crash: u64,
    /// Faults masked (n_masked = N − sdc − crash − corrected).
    pub masked: u64,
    /// Faults corrected by a protection scheme (subset of undetected).
    pub corrected: u64,
    /// Faults resolved Masked from the golden trace alone (no replay) —
    /// a throughput statistic, subset of `masked`.
    pub masked_fast_path: u64,
}

impl CampaignResult {
    /// Records one outcome.
    pub fn record(&mut self, o: FaultOutcome, fast_path: bool) {
        self.injected += 1;
        match o {
            FaultOutcome::Sdc => self.sdc += 1,
            FaultOutcome::Crash => self.crash += 1,
            FaultOutcome::Masked => {
                self.masked += 1;
                if fast_path {
                    self.masked_fast_path += 1;
                }
            }
            FaultOutcome::Corrected => self.corrected += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &CampaignResult) {
        self.injected += other.injected;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.masked += other.masked;
        self.corrected += other.corrected;
        self.masked_fast_path += other.masked_fast_path;
    }

    /// Fault detection capability n/N (paper §II-C).
    pub fn detection(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            (self.sdc + self.crash) as f64 / self.injected as f64
        }
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} detection={:.1}% (SDC {} / Crash {} / Masked {} / Corrected {})",
            self.injected,
            self.detection() * 100.0,
            self.sdc,
            self.crash,
            self.masked,
            self.corrected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_math() {
        let mut r = CampaignResult::default();
        r.record(FaultOutcome::Sdc, false);
        r.record(FaultOutcome::Crash, false);
        r.record(FaultOutcome::Masked, true);
        r.record(FaultOutcome::Masked, false);
        assert_eq!(r.injected, 4);
        assert!((r.detection() - 0.5).abs() < 1e-12);
        assert_eq!(r.masked_fast_path, 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CampaignResult::default();
        a.record(FaultOutcome::Sdc, false);
        let mut b = CampaignResult::default();
        b.record(FaultOutcome::Masked, true);
        a.merge(&b);
        assert_eq!(a.injected, 2);
        assert_eq!(a.masked, 1);
    }

    #[test]
    fn outcome_detected_flags() {
        assert!(FaultOutcome::Sdc.detected());
        assert!(FaultOutcome::Crash.detected());
        assert!(!FaultOutcome::Masked.detected());
    }
}
