//! Self-time profiling: per-thread span stacks, an opt-in sampling
//! ticker, and the schema-v6 `profile` record with flamegraph-folded
//! and speedscope exporters.
//!
//! The stage [`Span`](crate::Span) answers "how long did this stage
//! take in total"; it cannot answer "where inside the pipeline does the
//! wall time actually land" because it has no notion of nesting. The
//! [`Profiler`] adds exactly that: every profiled scope is pushed onto
//! its thread's span stack, so on exit the scope knows its *total* time
//! and its *self* time (total minus the time spent in enclosed profiled
//! scopes). Aggregated per `(thread, stack path)`, that is the hotspot
//! table `harpo profile` renders and the substrate both exporters
//! consume.
//!
//! Three design rules, mirroring the streaming and forensics layers:
//!
//! * **Off by default, free when off.** Nothing in this module runs
//!   unless a [`Profiler`] is constructed and threaded in; call sites
//!   hold an `Option<Profiler>` and pay one branch when it is `None`.
//!   The `campaign_profile_off_speedup_t1` bench key gates that this
//!   stays true.
//! * **Coarse scopes only.** A profiled scope takes a mutex on entry
//!   and exit, so it belongs around *stages* (generation, evaluation, a
//!   campaign replay batch), never around per-instruction work. Long
//!   branch-free kernels attribute via the sampling ticker instead.
//! * **Observational.** `profile` records carry wall-clock readings, so
//!   [`canonical_journal`](crate::canonical_journal) drops them (like
//!   the streaming kinds): profiling on or off, two runs that made the
//!   same decisions still compare bit-identical.
//!
//! The `profile` record is a *cumulative snapshot* per `(source,
//! thread)`: a run may publish interim snapshots (so `harpo watch` can
//! show the current hottest span) and one final snapshot; consumers
//! keep the **last** record per `(source, thread)` — see
//! [`latest_profiles`].

use crate::json::Value;
use crate::metrics::Histogram;
use crate::record::Record;
use crate::sink::Telemetry;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::{self, JoinHandle, ThreadId};
use std::time::{Duration, Instant};

/// One frame of a thread's live span stack.
#[derive(Debug)]
struct LiveFrame {
    name: &'static str,
    /// Nanoseconds already attributed to enclosed (child) scopes.
    child_ns: u64,
}

/// Aggregated statistics for one `(thread, stack path)` cell.
#[derive(Debug)]
struct FrameAgg {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    max_ns: u64,
    /// Per-entry total-time distribution (for p99).
    hist: Histogram,
}

impl FrameAgg {
    fn new() -> FrameAgg {
        FrameAgg {
            count: 0,
            total_ns: 0,
            self_ns: 0,
            max_ns: 0,
            hist: Histogram::new(),
        }
    }
}

#[derive(Default)]
struct State {
    /// Thread → dense ordinal, in first-span order.
    ordinals: HashMap<ThreadId, u64>,
    next_ordinal: u64,
    /// Live span stack per thread ordinal (what the sampler snapshots).
    stacks: BTreeMap<u64, Vec<LiveFrame>>,
    /// Finished-scope aggregation per `(thread ordinal, "a;b;c" path)`.
    frames: BTreeMap<(u64, String), FrameAgg>,
    /// Sampling-ticker tallies per `(thread ordinal, "a;b;c" path)`.
    samples: BTreeMap<(u64, String), u64>,
}

struct Inner {
    state: Mutex<State>,
    /// Sampler stop flag + wakeup, shared with the ticker thread.
    stop: Arc<(Mutex<bool>, Condvar)>,
    sampler: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        *self.stop.0.lock().expect("sampler stop flag poisoned") = true;
        self.stop.1.notify_all();
        if let Some(h) = self
            .sampler
            .get_mut()
            .expect("sampler slot poisoned")
            .take()
        {
            let _ = h.join();
        }
    }
}

/// The profiling handle: clone it freely (it is an `Arc` inside) and
/// hand one to each pipeline layer that should attribute its wall time.
///
/// ```
/// use harpo_telemetry::Profiler;
/// let p = Profiler::new();
/// {
///     let _outer = p.span("refine");
///     let _inner = p.span("evaluation");
///     // ... the stage ...
/// }
/// let snap = p.snapshot();
/// assert_eq!(snap.threads.len(), 1);
/// let stacks: Vec<&str> = snap.threads[0]
///     .frames
///     .iter()
///     .map(|f| f.stack.as_str())
///     .collect();
/// assert_eq!(stacks, ["refine", "refine;evaluation"]);
/// ```
#[derive(Clone)]
pub struct Profiler {
    inner: Arc<Inner>,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

impl Profiler {
    /// A fresh profiler with no recorded scopes and no sampler running.
    pub fn new() -> Profiler {
        Profiler {
            inner: Arc::new(Inner {
                state: Mutex::new(State::default()),
                stop: Arc::new((Mutex::new(false), Condvar::new())),
                sampler: Mutex::new(None),
            }),
        }
    }

    /// Enters a profiled scope on the current thread. The returned
    /// guard pops the scope on drop; scopes must nest (RAII enforces
    /// this within one thread).
    pub fn span(&self, name: &'static str) -> ProfGuard {
        let ordinal = {
            let mut st = self.inner.state.lock().expect("profiler state poisoned");
            let id = thread::current().id();
            let ordinal = match st.ordinals.get(&id) {
                Some(&o) => o,
                None => {
                    let o = st.next_ordinal;
                    st.next_ordinal += 1;
                    st.ordinals.insert(id, o);
                    o
                }
            };
            st.stacks
                .entry(ordinal)
                .or_default()
                .push(LiveFrame { name, child_ns: 0 });
            ordinal
        };
        ProfGuard {
            profiler: self.clone(),
            ordinal,
            start: Instant::now(),
        }
    }

    /// Starts the sampling ticker: a std-only thread that snapshots
    /// every live span stack each `cadence` and tallies the observed
    /// paths. This is how long branch-free kernels (which cannot afford
    /// per-op instrumentation) still attribute: the stack they run
    /// under is observed in proportion to the time it is live. A no-op
    /// if a sampler is already running.
    pub fn start_sampler(&self, cadence: Duration) {
        let mut slot = self.inner.sampler.lock().expect("sampler slot poisoned");
        if slot.is_some() {
            return;
        }
        *self
            .inner
            .stop
            .0
            .lock()
            .expect("sampler stop flag poisoned") = false;
        let stop = Arc::clone(&self.inner.stop);
        // The ticker holds only a weak handle on the state so a dropped
        // profiler is never kept alive by its own sampler.
        let state: Weak<Inner> = Arc::downgrade(&self.inner);
        *slot = Some(thread::spawn(move || loop {
            let guard = stop.0.lock().expect("sampler stop flag poisoned");
            let (guard, _) = stop
                .1
                .wait_timeout(guard, cadence)
                .expect("sampler stop flag poisoned");
            if *guard {
                return;
            }
            drop(guard);
            let Some(inner) = state.upgrade() else { return };
            let mut st = inner.state.lock().expect("profiler state poisoned");
            let live: Vec<(u64, String)> = st
                .stacks
                .iter()
                .filter(|(_, stack)| !stack.is_empty())
                .map(|(&o, stack)| (o, join_stack(stack.iter().map(|f| f.name))))
                .collect();
            for key in live {
                *st.samples.entry(key).or_insert(0) += 1;
            }
        }));
    }

    /// Stops the sampling ticker and waits for it to exit. A no-op if
    /// no sampler is running.
    pub fn stop_sampler(&self) {
        let handle = self
            .inner
            .sampler
            .lock()
            .expect("sampler slot poisoned")
            .take();
        if let Some(h) = handle {
            *self
                .inner
                .stop
                .0
                .lock()
                .expect("sampler stop flag poisoned") = true;
            self.inner.stop.1.notify_all();
            let _ = h.join();
        }
    }

    /// A point-in-time copy of everything recorded so far, per thread.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let st = self.inner.state.lock().expect("profiler state poisoned");
        let mut threads: BTreeMap<u64, ThreadProfile> = BTreeMap::new();
        for (&(ordinal, ref path), agg) in &st.frames {
            let t = threads.entry(ordinal).or_insert_with(|| ThreadProfile {
                thread: ordinal,
                frames: Vec::new(),
                samples: Vec::new(),
            });
            t.frames.push(FrameStat {
                stack: path.clone(),
                count: agg.count,
                total_ns: agg.total_ns,
                self_ns: agg.self_ns,
                max_ns: agg.max_ns,
                p99_ns: agg.hist.snapshot().percentile(0.99),
            });
        }
        for (&(ordinal, ref path), &n) in &st.samples {
            threads
                .entry(ordinal)
                .or_insert_with(|| ThreadProfile {
                    thread: ordinal,
                    frames: Vec::new(),
                    samples: Vec::new(),
                })
                .samples
                .push((path.clone(), n));
        }
        ProfileSnapshot {
            threads: threads.into_values().collect(),
        }
    }

    /// Emits the current snapshot as one `profile` record per thread.
    /// Records are cumulative: consumers keep the last record per
    /// `(source, thread)` (see [`latest_profiles`]), so publishing
    /// interim snapshots mid-run is safe.
    pub fn publish(&self, source: &str, telemetry: &Telemetry) {
        if !telemetry.enabled() {
            return;
        }
        let snap = self.snapshot();
        for t in &snap.threads {
            telemetry.emit(|| {
                let frames: Vec<Value> = t
                    .frames
                    .iter()
                    .map(|f| {
                        Value::Obj(vec![
                            ("stack".to_string(), Value::from(f.stack.as_str())),
                            ("count".to_string(), Value::U64(f.count)),
                            ("total_ns".to_string(), Value::U64(f.total_ns)),
                            ("self_ns".to_string(), Value::U64(f.self_ns)),
                            ("max_ns".to_string(), Value::U64(f.max_ns)),
                            ("p99_ns".to_string(), Value::U64(f.p99_ns)),
                        ])
                    })
                    .collect();
                let mut rec = Record::new("profile")
                    .field("source", source.to_string())
                    .field("thread", t.thread)
                    .field("frames", Value::Arr(frames));
                if !t.samples.is_empty() {
                    let samples: Vec<Value> = t
                        .samples
                        .iter()
                        .map(|(stack, n)| {
                            Value::Obj(vec![
                                ("stack".to_string(), Value::from(stack.as_str())),
                                ("count".to_string(), Value::U64(*n)),
                            ])
                        })
                        .collect();
                    rec = rec.field("samples", Value::Arr(samples));
                }
                rec
            });
        }
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock().expect("profiler state poisoned");
        f.debug_struct("Profiler")
            .field("threads", &st.next_ordinal)
            .field("frames", &st.frames.len())
            .finish()
    }
}

/// RAII guard for one profiled scope: created by [`Profiler::span`],
/// attributes the scope's time on drop.
#[derive(Debug)]
pub struct ProfGuard {
    profiler: Profiler,
    ordinal: u64,
    start: Instant,
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        let total = self.start.elapsed().as_nanos() as u64;
        let mut st = self
            .profiler
            .inner
            .state
            .lock()
            .expect("profiler state poisoned");
        let stack = st
            .stacks
            .get_mut(&self.ordinal)
            .expect("profiled thread has no stack");
        let frame = stack.pop().expect("profiler span stack underflow");
        let path = join_stack(stack.iter().map(|f| f.name).chain([frame.name]));
        // Self time is what was not already attributed to enclosed
        // scopes; the whole scope then counts as child time upstream.
        let self_ns = total.saturating_sub(frame.child_ns);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += total;
        }
        let agg = st
            .frames
            .entry((self.ordinal, path))
            .or_insert_with(FrameAgg::new);
        agg.count += 1;
        agg.total_ns += total;
        agg.self_ns += self_ns;
        agg.max_ns = agg.max_ns.max(total);
        agg.hist.observe(total);
    }
}

fn join_stack<'a>(names: impl Iterator<Item = &'a str>) -> String {
    let mut out = String::new();
    for name in names {
        if !out.is_empty() {
            out.push(';');
        }
        out.push_str(name);
    }
    out
}

/// Aggregated statistics for one stack path on one thread, as rendered
/// into `profile` records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameStat {
    /// The `;`-joined span stack (`"refine;evaluation"`).
    pub stack: String,
    /// Times the scope was entered.
    pub count: u64,
    /// Total wall time inside the scope, nanoseconds.
    pub total_ns: u64,
    /// Total minus time attributed to enclosed scopes, nanoseconds.
    pub self_ns: u64,
    /// Longest single entry, nanoseconds.
    pub max_ns: u64,
    /// p99 of per-entry total time, nanoseconds.
    pub p99_ns: u64,
}

/// One thread's profile: finished-scope aggregates plus sampler
/// tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadProfile {
    /// Dense thread ordinal, in first-span order.
    pub thread: u64,
    /// One entry per distinct stack path, sorted by path.
    pub frames: Vec<FrameStat>,
    /// Sampling-ticker tallies: `(stack path, samples observed)`.
    pub samples: Vec<(String, u64)>,
}

/// A point-in-time copy of a [`Profiler`]'s aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Per-thread profiles, sorted by thread ordinal.
    pub threads: Vec<ThreadProfile>,
}

/// Filters parsed `profile` records down to the **last** record per
/// `(source, thread)`, preserving that last record's file order.
/// Profile records are cumulative snapshots, so the last one per
/// identity supersedes every earlier one.
pub fn latest_profiles<'a>(records: &[&'a Value]) -> Vec<&'a Value> {
    let mut last: BTreeMap<(String, u64), (usize, &Value)> = BTreeMap::new();
    for (i, rec) in records.iter().enumerate() {
        let source = rec
            .get("source")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let thread = rec.get("thread").and_then(Value::as_u64).unwrap_or(0);
        last.insert((source, thread), (i, rec));
    }
    let mut out: Vec<(usize, &Value)> = last.into_values().collect();
    out.sort_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, rec)| rec).collect()
}

/// The hottest frame of one parsed `profile` record: the stack path
/// with the largest self time, with that self time in nanoseconds.
pub fn hottest_frame(record: &Value) -> Option<(String, u64)> {
    let frames = match record.get("frames") {
        Some(Value::Arr(frames)) => frames,
        _ => return None,
    };
    frames
        .iter()
        .filter_map(|f| {
            let stack = f.get("stack").and_then(Value::as_str)?;
            let self_ns = f.get("self_ns").and_then(Value::as_u64)?;
            Some((stack.to_string(), self_ns))
        })
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
}

/// Renders parsed `profile` records as collapsed-stack lines compatible
/// with `flamegraph.pl` / inferno: one `root;child;leaf weight` line
/// per frame, weighted by **self** time so the line weights sum to the
/// profiled wall time. Each thread's stacks are rooted under a
/// `source/t<thread>` frame so per-thread attribution survives the
/// collapse. Only the last record per `(source, thread)` contributes
/// (see [`latest_profiles`]).
pub fn folded_lines(records: &[&Value]) -> String {
    let mut out = String::new();
    for rec in latest_profiles(records) {
        let source = rec.get("source").and_then(Value::as_str).unwrap_or("?");
        let thread = rec.get("thread").and_then(Value::as_u64).unwrap_or(0);
        let frames = match rec.get("frames") {
            Some(Value::Arr(frames)) => frames,
            _ => continue,
        };
        for f in frames {
            let (Some(stack), Some(self_ns)) = (
                f.get("stack").and_then(Value::as_str),
                f.get("self_ns").and_then(Value::as_u64),
            ) else {
                continue;
            };
            if self_ns == 0 {
                continue;
            }
            out.push_str(&format!("{source}/t{thread};{stack} {self_ns}\n"));
        }
    }
    out
}

/// Renders parsed `profile` records as a speedscope JSON document
/// (<https://www.speedscope.app>, "sampled" profile type, nanosecond
/// unit): one profile per `(source, thread)`, one sample per stack path
/// weighted by its self time. Only the last record per `(source,
/// thread)` contributes (see [`latest_profiles`]).
pub fn speedscope_json(records: &[&Value], name: &str) -> String {
    let mut frame_names: Vec<String> = Vec::new();
    let mut frame_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut profiles: Vec<Value> = Vec::new();
    for rec in latest_profiles(records) {
        let source = rec.get("source").and_then(Value::as_str).unwrap_or("?");
        let thread = rec.get("thread").and_then(Value::as_u64).unwrap_or(0);
        let frames = match rec.get("frames") {
            Some(Value::Arr(frames)) => frames,
            _ => continue,
        };
        let mut samples: Vec<Value> = Vec::new();
        let mut weights: Vec<Value> = Vec::new();
        let mut end: u64 = 0;
        for f in frames {
            let (Some(stack), Some(self_ns)) = (
                f.get("stack").and_then(Value::as_str),
                f.get("self_ns").and_then(Value::as_u64),
            ) else {
                continue;
            };
            if self_ns == 0 {
                continue;
            }
            let indices: Vec<Value> = stack
                .split(';')
                .map(|part| {
                    let idx = *frame_index.entry(part.to_string()).or_insert_with(|| {
                        frame_names.push(part.to_string());
                        frame_names.len() - 1
                    });
                    Value::U64(idx as u64)
                })
                .collect();
            samples.push(Value::Arr(indices));
            weights.push(Value::U64(self_ns));
            end += self_ns;
        }
        profiles.push(Value::Obj(vec![
            ("type".to_string(), Value::from("sampled")),
            (
                "name".to_string(),
                Value::from(format!("{source}/t{thread}")),
            ),
            ("unit".to_string(), Value::from("nanoseconds")),
            ("startValue".to_string(), Value::U64(0)),
            ("endValue".to_string(), Value::U64(end)),
            ("samples".to_string(), Value::Arr(samples)),
            ("weights".to_string(), Value::Arr(weights)),
        ]));
    }
    let frames: Vec<Value> = frame_names
        .into_iter()
        .map(|n| Value::Obj(vec![("name".to_string(), Value::Str(n))]))
        .collect();
    let mut doc = vec![
        (
            "$schema".to_string(),
            Value::from("https://www.speedscope.app/file-format-schema.json"),
        ),
        ("name".to_string(), Value::from(name)),
        ("exporter".to_string(), Value::from("harpo-telemetry")),
        (
            "shared".to_string(),
            Value::Obj(vec![("frames".to_string(), Value::Arr(frames))]),
        ),
    ];
    if !profiles.is_empty() {
        doc.push(("activeProfileIndex".to_string(), Value::U64(0)));
    }
    doc.push(("profiles".to_string(), Value::Arr(profiles)));
    Value::Obj(doc).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn self_time_never_exceeds_total_and_children_fit_the_parent() {
        let p = Profiler::new();
        {
            let _root = p.span("root");
            for _ in 0..3 {
                let _child = p.span("child");
                std::thread::sleep(Duration::from_millis(1));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = p.snapshot();
        assert_eq!(snap.threads.len(), 1);
        let frames = &snap.threads[0].frames;
        let root = frames.iter().find(|f| f.stack == "root").unwrap();
        let child = frames.iter().find(|f| f.stack == "root;child").unwrap();
        assert_eq!(root.count, 1);
        assert_eq!(child.count, 3);
        for f in frames {
            assert!(f.self_ns <= f.total_ns, "{}: self > total", f.stack);
            assert!(f.max_ns <= f.total_ns, "{}: max > total", f.stack);
            assert!(f.p99_ns > 0, "{}: empty p99", f.stack);
        }
        // Children's total fits inside the parent, and the parent's
        // self + children's total reconstructs the parent's total.
        assert!(child.total_ns <= root.total_ns);
        assert_eq!(root.self_ns + child.total_ns, root.total_ns);
    }

    #[test]
    fn per_thread_self_times_sum_to_the_root_total() {
        let p = Profiler::new();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let p = p.clone();
                s.spawn(move || {
                    let _root = p.span("worker");
                    {
                        let _a = p.span("a");
                        let _b = p.span("b");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                });
            }
        });
        let snap = p.snapshot();
        assert_eq!(snap.threads.len(), 2);
        for t in &snap.threads {
            let root_total: u64 = t
                .frames
                .iter()
                .filter(|f| !f.stack.contains(';'))
                .map(|f| f.total_ns)
                .sum();
            let self_sum: u64 = t.frames.iter().map(|f| f.self_ns).sum();
            // Self times are an exact decomposition of the root total:
            // every nanosecond inside the root span is self time of
            // exactly one stack path.
            assert_eq!(self_sum, root_total, "thread {}", t.thread);
        }
    }

    #[test]
    fn sampler_observes_a_live_stack_and_stops_cleanly() {
        let p = Profiler::new();
        p.start_sampler(Duration::from_millis(1));
        {
            let _root = p.span("kernel");
            std::thread::sleep(Duration::from_millis(30));
        }
        p.stop_sampler();
        let snap = p.snapshot();
        let samples = &snap.threads[0].samples;
        let kernel = samples.iter().find(|(stack, _)| stack == "kernel");
        assert!(kernel.is_some(), "sampler never saw the live stack");
        assert!(kernel.unwrap().1 >= 1);
        // Stopping twice is a no-op.
        p.stop_sampler();
    }

    #[test]
    fn publish_emits_one_record_per_thread() {
        let p = Profiler::new();
        {
            let _s = p.span("stage");
        }
        let mem = Arc::new(MemorySink::new());
        let t = Telemetry::to(mem.clone());
        p.publish("refine", &t);
        let recs = mem.records_of("profile");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get("source").unwrap().as_str(), Some("refine"));
        assert_eq!(recs[0].get("thread").unwrap().as_u64(), Some(0));
        let frames = match recs[0].get("frames").unwrap() {
            Value::Arr(frames) => frames,
            other => panic!("frames not an array: {other:?}"),
        };
        assert_eq!(frames[0].get("stack").unwrap().as_str(), Some("stage"));
        assert_eq!(frames[0].get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn publish_without_sinks_is_free() {
        let p = Profiler::new();
        {
            let _s = p.span("stage");
        }
        p.publish("refine", &Telemetry::off());
    }

    fn profile_value(source: &str, thread: u64, frames: &[(&str, u64)]) -> Value {
        Value::Obj(vec![
            ("kind".to_string(), Value::from("profile")),
            ("source".to_string(), Value::from(source)),
            ("thread".to_string(), Value::U64(thread)),
            (
                "frames".to_string(),
                Value::Arr(
                    frames
                        .iter()
                        .map(|&(stack, self_ns)| {
                            Value::Obj(vec![
                                ("stack".to_string(), Value::from(stack)),
                                ("count".to_string(), Value::U64(1)),
                                ("total_ns".to_string(), Value::U64(self_ns * 2)),
                                ("self_ns".to_string(), Value::U64(self_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn latest_profile_per_identity_wins() {
        let early = profile_value("refine", 0, &[("a", 1)]);
        let late = profile_value("refine", 0, &[("a", 9)]);
        let other = profile_value("refine", 1, &[("b", 5)]);
        let records = [&early, &other, &late];
        let latest = latest_profiles(&records);
        assert_eq!(latest.len(), 2);
        assert!(std::ptr::eq(latest[0], &other));
        assert!(std::ptr::eq(latest[1], &late));
    }

    #[test]
    fn hottest_frame_is_max_self_time() {
        let rec = profile_value("refine", 0, &[("root", 10), ("root;hot", 90)]);
        assert_eq!(hottest_frame(&rec), Some(("root;hot".to_string(), 90)));
        let empty = profile_value("refine", 0, &[]);
        assert_eq!(hottest_frame(&empty), None);
    }

    #[test]
    fn folded_lines_weight_by_self_time_and_root_per_thread() {
        let t0 = profile_value("refine", 0, &[("root", 10), ("root;hot", 90), ("idle", 0)]);
        let t1 = profile_value("refine", 1, &[("worker", 40)]);
        let records = [&t0, &t1];
        let folded = folded_lines(&records);
        assert_eq!(
            folded,
            "refine/t0;root 10\nrefine/t0;root;hot 90\nrefine/t1;worker 40\n"
        );
    }

    #[test]
    fn speedscope_json_is_valid_and_indexes_frames() {
        let t0 = profile_value("refine", 0, &[("root", 10), ("root;hot", 90)]);
        let records = [&t0];
        let doc = crate::json::parse(&speedscope_json(&records, "golden")).unwrap();
        assert_eq!(
            doc.get("$schema").unwrap().as_str(),
            Some("https://www.speedscope.app/file-format-schema.json")
        );
        let frames = match doc.get("shared").unwrap().get("frames").unwrap() {
            Value::Arr(frames) => frames,
            other => panic!("frames not an array: {other:?}"),
        };
        let names: Vec<&str> = frames
            .iter()
            .map(|f| f.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, ["root", "hot"]);
        let profiles = match doc.get("profiles").unwrap() {
            Value::Arr(profiles) => profiles,
            other => panic!("profiles not an array: {other:?}"),
        };
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.get("type").unwrap().as_str(), Some("sampled"));
        assert_eq!(p.get("unit").unwrap().as_str(), Some("nanoseconds"));
        assert_eq!(p.get("endValue").unwrap().as_u64(), Some(100));
        let samples = match p.get("samples").unwrap() {
            Value::Arr(samples) => samples,
            other => panic!("samples not an array: {other:?}"),
        };
        let weights = match p.get("weights").unwrap() {
            Value::Arr(weights) => weights,
            other => panic!("weights not an array: {other:?}"),
        };
        assert_eq!(samples.len(), weights.len());
        // "root;hot" resolves to frame indices [0, 1].
        assert_eq!(samples[1], Value::Arr(vec![Value::U64(0), Value::U64(1)]));
        assert_eq!(weights[1], Value::U64(90));
    }

    #[test]
    fn speedscope_of_no_profiles_omits_active_index() {
        let doc = crate::json::parse(&speedscope_json(&[], "empty")).unwrap();
        assert!(doc.get("activeProfileIndex").is_none());
        assert_eq!(doc.get("profiles"), Some(&Value::Arr(Vec::new())));
    }

    #[test]
    fn dropped_profiler_reaps_its_sampler() {
        let p = Profiler::new();
        p.start_sampler(Duration::from_millis(1));
        // Dropping the last handle must signal and join the ticker
        // rather than leaking the thread.
        drop(p);
    }
}
