/root/repo/target/debug/deps/pipeline_speed-af72fd6dc99d527f.d: crates/bench/src/bin/pipeline_speed.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_speed-af72fd6dc99d527f.rmeta: crates/bench/src/bin/pipeline_speed.rs Cargo.toml

crates/bench/src/bin/pipeline_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
