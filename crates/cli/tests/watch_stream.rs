//! Reader-vs-writer contract for `harpo watch`.
//!
//! A live journal is written by another thread (or process) while the
//! watcher reads it, so the follower must cope with every partial state
//! an appending writer can leave behind: a torn final line, EOF in the
//! middle of a record, and the file growing between polls. The second
//! test drives the shipped binary end to end: `harpo watch --once
//! --json` pointed at a journal a real streamed campaign is writing
//! must report progress, an ETA and per-worker heartbeats.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use harpo_cli::watch::{Follower, WatchState};
use harpo_coverage::TargetStructure;
use harpo_faultsim::{
    build_campaign_trail, measure_detection_streamed, CampaignConfig, StreamSettings,
};
use harpo_museqgen::{GenConstraints, Generator};
use harpo_telemetry::json::{self, Value};
use harpo_telemetry::{JsonlSink, Telemetry};
use harpo_uarch::OooCore;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("harpo-watchstream-{}-{name}", std::process::id()))
}

#[test]
fn follower_keeps_up_with_a_writer_that_tears_every_line() {
    const N: u64 = 200;
    let path = tmp("torn.jsonl");
    std::fs::remove_file(&path).ok();
    let writer_path = path.clone();

    // The writer splits every record at an awkward byte offset and
    // flushes both halves separately, so the reader sees a mid-record
    // EOF on essentially every poll.
    let writer = std::thread::spawn(move || {
        let mut f = std::fs::File::create(&writer_path).unwrap();
        for i in 0..N {
            let line = format!(
                "{{\"kind\":\"progress\",\"v\":4,\"source\":\"campaign\",\"done\":{},\"total\":{N}}}\n",
                i + 1
            );
            let split = (line.len() / 2).max(1);
            f.write_all(&line.as_bytes()[..split]).unwrap();
            f.flush().unwrap();
            if i % 16 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            f.write_all(&line.as_bytes()[split..]).unwrap();
            f.flush().unwrap();
        }
    });

    let mut follower = Follower::new(path.to_str().unwrap());
    let mut state = WatchState::default();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while state.records < N {
        assert!(
            std::time::Instant::now() < deadline,
            "reader saw only {}/{N} records",
            state.records
        );
        for line in follower.poll() {
            state.ingest(&line).unwrap();
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    writer.join().unwrap();

    // Every record arrived intact: torn halves were joined, never
    // misparsed, and the latest snapshot is the writer's last word.
    assert_eq!(state.records, N);
    assert_eq!(state.skipped, 0, "a torn line was parsed as garbage");
    let p = state.progress.as_ref().unwrap();
    assert_eq!(p.get("done").and_then(Value::as_u64), Some(N));
    std::fs::remove_file(&path).ok();
}

#[test]
fn watch_once_json_reports_a_mid_run_campaign() {
    let path = tmp("live.jsonl");
    std::fs::remove_file(&path).ok();
    let journal = path.to_str().unwrap().to_string();

    // A real streamed campaign in the background: big enough that the
    // wall-clock budget, not the fault list, ends it.
    let sink_path = journal.clone();
    let campaign = std::thread::spawn(move || {
        let prog = Generator::new(GenConstraints {
            n_insts: 300,
            ..GenConstraints::default()
        })
        .generate(7);
        let core = OooCore::default();
        let ccfg = CampaignConfig {
            n_faults: 500_000,
            seed: 0xBEA7,
            threads: 2,
            cap: 10_000_000,
            stream: StreamSettings {
                cadence_ms: 2,
                wall_budget_ms: 150,
                ..StreamSettings::default()
            },
            ..CampaignConfig::default()
        };
        let sim = core.simulate(&prog, ccfg.cap).expect("golden run");
        let trail = build_campaign_trail(&prog, &ccfg);
        let sink = JsonlSink::create(&sink_path).expect("create journal");
        measure_detection_streamed(
            &prog,
            TargetStructure::Irf,
            &core,
            &ccfg,
            &sim.output.signature,
            &sim.trace,
            trail.as_ref(),
            &Telemetry::to(Arc::new(sink)),
        )
        .0
    });

    // Snapshot the journal with the shipped binary while (or just
    // after) the campaign writes it. Streaming records are flushed as
    // they are emitted, so a snapshot within a couple of cadences of
    // the first tick sees live progress.
    let harpo = env!("CARGO_BIN_EXE_harpo");
    let mut snapshot = None;
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(10));
        let out = std::process::Command::new(harpo)
            .args(["watch", &journal, "--once", "--json"])
            .output()
            .expect("run harpo watch");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).expect("utf8 json");
        let v = json::parse(text.trim()).expect("watch --json emits one JSON object");
        let workers = v
            .get("workers")
            .and_then(Value::as_arr)
            .map_or(0, |a| a.len());
        if v.get("done").is_some() && v.get("eta_ns").is_some() && workers == 2 {
            snapshot = Some(v);
            break;
        }
    }
    let result = campaign.join().unwrap();
    let v = snapshot.expect("watch --once --json never reported progress + ETA + 2 workers");

    // The snapshot carries everything a dashboard needs.
    assert!(v.get("done").and_then(Value::as_u64).unwrap() > 0);
    assert_eq!(v.get("total").and_then(Value::as_u64), Some(500_000));
    assert!(v.get("eta_ns").and_then(Value::as_u64).is_some());
    for w in v.get("workers").and_then(Value::as_arr).unwrap() {
        assert_eq!(w.get("kind").and_then(Value::as_str), Some("heartbeat"));
        assert!(w.get("worker").and_then(Value::as_u64).unwrap() < 2);
        assert!(w.get("rss_bytes").and_then(Value::as_u64).unwrap() > 0);
    }

    // The budget cut the campaign short, so a final snapshot also shows
    // the resumable cursor the journal closed with.
    assert!(result.injected < 500_000, "budget failed to stop the run");
    let out = std::process::Command::new(harpo)
        .args(["watch", &journal, "--once", "--json"])
        .output()
        .expect("run harpo watch");
    let text = String::from_utf8(out.stdout).unwrap();
    let v = json::parse(text.trim()).unwrap();
    let cursor = v.get("cursor").expect("cursor after a budget stop");
    assert_eq!(
        cursor.get("completed").and_then(Value::as_u64),
        Some(result.injected)
    );
    std::fs::remove_file(&path).ok();
}
