/root/repo/target/debug/deps/harpo_museqgen-3172fb0a21b52620.d: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/debug/deps/libharpo_museqgen-3172fb0a21b52620.rlib: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/debug/deps/libharpo_museqgen-3172fb0a21b52620.rmeta: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

crates/museqgen/src/lib.rs:
crates/museqgen/src/constraints.rs:
crates/museqgen/src/generator.rs:
crates/museqgen/src/mutate.rs:
