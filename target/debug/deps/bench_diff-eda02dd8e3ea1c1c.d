/root/repo/target/debug/deps/bench_diff-eda02dd8e3ea1c1c.d: crates/bench/src/bin/bench_diff.rs

/root/repo/target/debug/deps/bench_diff-eda02dd8e3ea1c1c: crates/bench/src/bin/bench_diff.rs

crates/bench/src/bin/bench_diff.rs:
