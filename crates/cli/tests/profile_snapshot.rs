//! Golden snapshot of `harpo profile`: rendering the committed journal
//! must reproduce the committed profile byte-for-byte.
//!
//! Like the report snapshot, rendering is a pure function of the
//! journal bytes, so this pins the whole profile pipeline — hotspot
//! ranking, self/total accounting, cost attribution, number formatting.
//! Regenerate together with the journal:
//!
//! ```text
//! cargo run --example golden_journal
//! cargo run -p harpo-cli --bin harpo -- profile tests/data/golden_run.jsonl \
//!     --out tests/data/golden_profile.md
//! ```

use harpo_cli::profile::render;
use harpo_telemetry::json::{self, Value};

fn repo_file(rel: &str) -> String {
    let path = format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn parse_journal(content: &str) -> Vec<Value> {
    content
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| json::parse(l).expect("golden journal line parses"))
        .collect()
}

#[test]
fn golden_profile_is_byte_identical() {
    let records = parse_journal(&repo_file("tests/data/golden_run.jsonl"));
    let rendered = render(&records, 20);
    let committed = repo_file("tests/data/golden_profile.md");
    assert_eq!(
        rendered, committed,
        "profile output drifted from tests/data/golden_profile.md — \
         if the change is intentional, regenerate the golden files \
         (see this test's module docs)"
    );
}

/// The structural invariants the ISSUE acceptance rests on, asserted
/// directly on the committed journal rather than on rendered text: the
/// hotspot self times must sum to the root span's total within 1%, and
/// the cost matrix must attribute at least 99% of the campaign's
/// replayed instructions.
#[test]
fn golden_profile_accounting_is_tight() {
    let records = parse_journal(&repo_file("tests/data/golden_run.jsonl"));
    let refs: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("kind").and_then(Value::as_str) == Some("profile"))
        .collect();
    let profiles = harpo_telemetry::latest_profiles(&refs);
    assert!(!profiles.is_empty(), "golden journal carries no profile");

    let mut self_sum = 0u64;
    let mut root_total = 0u64;
    for p in &profiles {
        for f in p.get("frames").and_then(Value::as_arr).unwrap() {
            let self_ns = f.get("self_ns").and_then(Value::as_u64).unwrap();
            self_sum += self_ns;
            if f.get("stack").and_then(Value::as_str) == Some("refine") {
                root_total += f.get("total_ns").and_then(Value::as_u64).unwrap();
            }
        }
    }
    assert!(root_total > 0, "no root span in golden profile");
    let coverage = self_sum as f64 / root_total as f64;
    assert!(
        (coverage - 1.0).abs() < 0.01,
        "self times cover {coverage:.4} of the root total, want within 1%"
    );

    let mut attributed = 0u64;
    for r in &records {
        if r.get("kind").and_then(Value::as_str) == Some("cost")
            && r.get("scope").and_then(Value::as_str) == Some("replay")
        {
            attributed += r.get("replay_insts").and_then(Value::as_u64).unwrap();
        }
    }
    let campaign_insts: u64 = records
        .iter()
        .filter(|r| r.get("kind").and_then(Value::as_str) == Some("campaign"))
        .map(|r| r.get("replay_insts").and_then(Value::as_u64).unwrap())
        .sum();
    assert!(campaign_insts > 0, "no campaign in golden journal");
    assert!(
        attributed as f64 >= campaign_insts as f64 * 0.99,
        "cost records attribute {attributed} of {campaign_insts} replay insts, want >= 99%"
    );
}
