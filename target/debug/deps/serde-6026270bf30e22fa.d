/root/repo/target/debug/deps/serde-6026270bf30e22fa.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6026270bf30e22fa.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-6026270bf30e22fa.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
