//! The L1 data cache timing and residency model.
//!
//! A set-associative, write-allocate, write-back cache with LRU
//! replacement. Beyond hit/miss timing, the model emits the *residency
//! events* (fills, evictions) and per-access placements (set, way) that
//! the ACE lifetime analysis and the transient-fault planner consume: a
//! fault is injected into a physical `(set, way, bit, cycle)` and the
//! event stream determines which program byte — if any — was resident
//! there.

use crate::config::CoreConfig;
use serde::{Deserialize, Serialize};

/// What happened to a line frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineEventKind {
    /// A line was filled into the frame.
    Fill,
    /// The previous occupant left without writeback.
    EvictClean,
    /// The previous occupant was written back to memory.
    EvictDirty,
}

/// A fill/eviction event on one cache frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineEvent {
    /// Cycle of the event.
    pub cycle: u64,
    /// Set index.
    pub set: u32,
    /// Way index.
    pub way: u32,
    /// Base address of the line involved.
    pub line_addr: u64,
    /// Event kind.
    pub kind: LineEventKind,
}

/// One data access as placed in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheAccess {
    /// Dynamic instruction index of the access.
    pub dyn_idx: u64,
    /// Cycle the data array was read/written.
    pub cycle: u64,
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// True for stores.
    pub is_store: bool,
    /// Whether the access hit.
    pub hit: bool,
    /// Set index of the (first) line touched.
    pub set: u32,
    /// Way index within the set.
    pub way: u32,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// The cache model. One instance per simulated program run.
#[derive(Debug)]
pub struct L1Dcache {
    sets: u32,
    assoc: u32,
    line: u32,
    frames: Vec<Frame>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl L1Dcache {
    /// Builds an empty (all-invalid) cache per the config geometry.
    pub fn new(cfg: &CoreConfig) -> L1Dcache {
        L1Dcache {
            sets: cfg.l1d_sets(),
            assoc: cfg.l1d_assoc,
            line: cfg.l1d_line,
            frames: vec![
                Frame {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0,
                };
                (cfg.l1d_sets() * cfg.l1d_assoc) as usize
            ],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Returns the cache to the empty state [`L1Dcache::new`] produces,
    /// reusing the frame allocation (re-sizing it only if the configured
    /// geometry changed). Part of the [`crate::SimContext`] reuse path.
    pub fn reset(&mut self, cfg: &CoreConfig) {
        self.sets = cfg.l1d_sets();
        self.assoc = cfg.l1d_assoc;
        self.line = cfg.l1d_line;
        self.frames.clear();
        self.frames.resize(
            (self.sets * self.assoc) as usize,
            Frame {
                tag: 0,
                valid: false,
                dirty: false,
                lru: 0,
            },
        );
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Line base address of `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line as u64 - 1)
    }

    /// Set index of `addr`.
    #[inline]
    pub fn set_of(&self, addr: u64) -> u32 {
        ((addr / self.line as u64) % self.sets as u64) as u32
    }

    /// Performs one access (already split so it does not straddle lines).
    /// Returns `(hit, way)` and appends any fill/evict events to `events`.
    pub fn access(
        &mut self,
        addr: u64,
        is_store: bool,
        cycle: u64,
        events: &mut Vec<LineEvent>,
    ) -> (bool, u32) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(addr);
        let tag = addr / (self.line as u64 * self.sets as u64);
        let base = (set * self.assoc) as usize;
        let set_frames = &mut self.frames[base..base + self.assoc as usize];

        if let Some((w, f)) = set_frames
            .iter_mut()
            .enumerate()
            .find(|(_, f)| f.valid && f.tag == tag)
        {
            f.lru = tick;
            f.dirty |= is_store;
            self.hits += 1;
            return (true, w as u32);
        }

        // Miss: pick the LRU victim (prefer invalid frames).
        self.misses += 1;
        let (victim, _) = set_frames
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| if f.valid { f.lru + 1 } else { 0 })
            .expect("assoc >= 1");
        let f = &mut set_frames[victim];
        if f.valid {
            let old_addr = (f.tag * self.sets as u64 + set as u64) * self.line as u64;
            events.push(LineEvent {
                cycle,
                set,
                way: victim as u32,
                line_addr: old_addr,
                kind: if f.dirty {
                    LineEventKind::EvictDirty
                } else {
                    LineEventKind::EvictClean
                },
            });
            if f.dirty {
                self.writebacks += 1;
            }
        }
        *f = Frame {
            tag,
            valid: true,
            dirty: is_store,
            lru: tick,
        };
        events.push(LineEvent {
            cycle,
            set,
            way: victim as u32,
            line_addr: self.line_addr(addr),
            kind: LineEventKind::Fill,
        });
        (false, victim as u32)
    }

    /// (hits, misses, writebacks) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.writebacks)
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u32 {
        self.line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> (L1Dcache, Vec<LineEvent>) {
        (L1Dcache::new(&CoreConfig::default()), Vec::new())
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let (mut c, mut ev) = cache();
        let (hit, way) = c.access(0x10000, false, 1, &mut ev);
        assert!(!hit);
        let (hit2, way2) = c.access(0x10008, false, 2, &mut ev);
        assert!(hit2, "same line");
        assert_eq!(way, way2);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, LineEventKind::Fill);
    }

    #[test]
    fn conflict_evictions_emit_events() {
        let (mut c, mut ev) = cache();
        // 9 lines mapping to the same set (stride = sets * line = 4096).
        for i in 0..9u64 {
            c.access(0x10000 + i * 4096, i == 0, 10 + i, &mut ev);
        }
        let evictions: Vec<_> = ev
            .iter()
            .filter(|e| e.kind != LineEventKind::Fill)
            .collect();
        assert_eq!(evictions.len(), 1, "one way over capacity");
        assert_eq!(
            evictions[0].kind,
            LineEventKind::EvictDirty,
            "way 0 was stored to"
        );
        assert_eq!(evictions[0].line_addr, 0x10000);
    }

    #[test]
    fn lru_keeps_recent_lines() {
        let (mut c, mut ev) = cache();
        for i in 0..8u64 {
            c.access(0x10000 + i * 4096, false, i, &mut ev);
        }
        // Touch line 0 again, then insert a 9th line: victim must be line 1.
        c.access(0x10000, false, 100, &mut ev);
        c.access(0x10000 + 8 * 4096, false, 101, &mut ev);
        let last_evict = ev
            .iter()
            .rev()
            .find(|e| e.kind != LineEventKind::Fill)
            .unwrap();
        assert_eq!(last_evict.line_addr, 0x10000 + 4096);
        let (hit, _) = c.access(0x10000, false, 102, &mut ev);
        assert!(hit, "recently-touched line survived");
    }

    #[test]
    fn working_set_fits_32k() {
        let (mut c, mut ev) = cache();
        // Stream 32 KiB twice: second pass all hits.
        for pass in 0..2 {
            for off in (0..32 * 1024).step_by(64) {
                c.access(0x10000 + off as u64, false, off as u64, &mut ev);
            }
            let (h, m, _) = c.stats();
            if pass == 0 {
                assert_eq!(m, 512);
                assert_eq!(h, 0);
            } else {
                assert_eq!(h, 512);
            }
        }
    }
}
