/root/repo/target/debug/deps/harpo_gates-416d9424acdd32b0.d: crates/gates/src/lib.rs crates/gates/src/adder.rs crates/gates/src/compiled.rs crates/gates/src/components.rs crates/gates/src/eval.rs crates/gates/src/fp_common.rs crates/gates/src/fpadd.rs crates/gates/src/fpmul.rs crates/gates/src/multiplier.rs crates/gates/src/netlist.rs crates/gates/src/provider.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_gates-416d9424acdd32b0.rmeta: crates/gates/src/lib.rs crates/gates/src/adder.rs crates/gates/src/compiled.rs crates/gates/src/components.rs crates/gates/src/eval.rs crates/gates/src/fp_common.rs crates/gates/src/fpadd.rs crates/gates/src/fpmul.rs crates/gates/src/multiplier.rs crates/gates/src/netlist.rs crates/gates/src/provider.rs Cargo.toml

crates/gates/src/lib.rs:
crates/gates/src/adder.rs:
crates/gates/src/compiled.rs:
crates/gates/src/components.rs:
crates/gates/src/eval.rs:
crates/gates/src/fp_common.rs:
crates/gates/src/fpadd.rs:
crates/gates/src/fpmul.rs:
crates/gates/src/multiplier.rs:
crates/gates/src/netlist.rs:
crates/gates/src/provider.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
