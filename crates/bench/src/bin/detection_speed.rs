//! §VI-C — detection *speed*: how many cycles a test needs to reach its
//! detection capability.
//!
//! The paper's example: a MiBench program matches Harpocrates' 99%
//! integer-adder detection only after 11M+ cycles, while the generated
//! test gets there in ~50K cycles (≈220× faster). Here we sweep prefix
//! truncations of the Harpocrates champion and compare against the best
//! baseline program for the integer adder and multiplier.

use harpo_bench::{baseline_suites, write_csv, Cli, Harness};
use harpo_coverage::TargetStructure;
use harpo_isa::inst::Inst;
use harpo_isa::program::Program;
use harpo_uarch::OooCore;

fn truncated(p: &Program, frac: f64) -> Program {
    let n = ((p.len() - 1) as f64 * frac).max(1.0) as usize;
    let mut insts: Vec<Inst> = p.insts[..n].to_vec();
    insts.push(Inst::halt());
    Program {
        name: format!("{}@{:.0}%", p.name, frac * 100.0),
        insts,
        reg_init: p.reg_init.clone(),
        mem: p.mem.clone(),
        provenance: p.provenance.clone(),
    }
}

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("detection_speed", &cli);
    let core = OooCore::default();
    let ccfg = cli.campaign();

    let mut csv = Vec::new();
    for structure in [TargetStructure::IntAdder, TargetStructure::IntMultiplier] {
        println!("\n=== Detection speed: {} ===", structure.label());

        // Best baseline program (by detection).
        let mut best: Option<(String, f64, u64)> = None;
        for (fw, progs) in baseline_suites(cli.scale) {
            for p in &progs {
                let (_, det, cycles) = harness.grade(p, structure, &core, &ccfg);
                if best.as_ref().map(|b| det > b.1).unwrap_or(true) {
                    best = Some((format!("{fw}/{}", p.name), det, cycles));
                }
            }
        }
        let (bname, bdet, bcycles) = best.expect("some baseline");
        println!(
            "best baseline: {bname} → {:.1}% in {bcycles} cycles",
            bdet * 100.0
        );

        // Harpocrates champion at prefix truncations.
        let report = harness.run_harpocrates(structure, cli.scale, cli.threads);
        println!("{:>10} {:>12} {:>11}", "prefix", "cycles", "detection");
        let mut cycles_at_parity = None;
        for frac in [0.125, 0.25, 0.5, 1.0] {
            let t = truncated(&report.champion, frac);
            let (_, det, cycles) = harness.grade(&t, structure, &core, &ccfg);
            println!(
                "{:>9.0}% {:>12} {:>10.1}%",
                frac * 100.0,
                cycles,
                det * 100.0
            );
            csv.push(format!(
                "{},{},{},{:.6}",
                structure.label(),
                frac,
                cycles,
                det
            ));
            if cycles_at_parity.is_none() && det >= bdet {
                cycles_at_parity = Some(cycles);
            }
        }
        if let Some(c) = cycles_at_parity {
            println!(
                "Harpocrates reaches the best baseline's detection in {c} cycles — {:.0}× faster than {bcycles}",
                bcycles as f64 / c.max(1) as f64
            );
        } else {
            println!("Harpocrates champion did not reach baseline parity at this scale");
        }
    }
    write_csv(
        &cli.out_dir,
        "detection_speed.csv",
        "structure,prefix_fraction,cycles,detection",
        &csv,
    );
    harness.finish();
}
