/root/repo/target/debug/deps/harpo_gates-de4213bf47fb2536.d: crates/gates/src/lib.rs crates/gates/src/adder.rs crates/gates/src/compiled.rs crates/gates/src/components.rs crates/gates/src/eval.rs crates/gates/src/fp_common.rs crates/gates/src/fpadd.rs crates/gates/src/fpmul.rs crates/gates/src/multiplier.rs crates/gates/src/netlist.rs crates/gates/src/provider.rs

/root/repo/target/debug/deps/libharpo_gates-de4213bf47fb2536.rlib: crates/gates/src/lib.rs crates/gates/src/adder.rs crates/gates/src/compiled.rs crates/gates/src/components.rs crates/gates/src/eval.rs crates/gates/src/fp_common.rs crates/gates/src/fpadd.rs crates/gates/src/fpmul.rs crates/gates/src/multiplier.rs crates/gates/src/netlist.rs crates/gates/src/provider.rs

/root/repo/target/debug/deps/libharpo_gates-de4213bf47fb2536.rmeta: crates/gates/src/lib.rs crates/gates/src/adder.rs crates/gates/src/compiled.rs crates/gates/src/components.rs crates/gates/src/eval.rs crates/gates/src/fp_common.rs crates/gates/src/fpadd.rs crates/gates/src/fpmul.rs crates/gates/src/multiplier.rs crates/gates/src/netlist.rs crates/gates/src/provider.rs

crates/gates/src/lib.rs:
crates/gates/src/adder.rs:
crates/gates/src/compiled.rs:
crates/gates/src/components.rs:
crates/gates/src/eval.rs:
crates/gates/src/fp_common.rs:
crates/gates/src/fpadd.rs:
crates/gates/src/fpmul.rs:
crates/gates/src/multiplier.rs:
crates/gates/src/netlist.rs:
crates/gates/src/provider.rs:
