//! The "Fleetscanner" use case (paper §IV-B): comprehensive
//! out-of-production screening. No runtime constraint — Harpocrates
//! iterates until the detection target is met, then the test is used to
//! screen a (simulated) fleet of CPUs, some of which carry silicon
//! defects.
//!
//! ```sh
//! cargo run --release --example fleetscanner
//! ```

use harpocrates::core::{presets, Evaluator, Harpocrates, Scale};
use harpocrates::coverage::TargetStructure;
use harpocrates::gates::{FaultyFu, GateFault, GradedUnit};
use harpocrates::isa::exec::Machine;
use harpocrates::isa::fu::NativeFu;
use harpocrates::museqgen::Generator;
use harpocrates::uarch::OooCore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let structure = TargetStructure::IntAdder;
    println!(
        "Fleetscanner mode: screening for {} defects\n",
        structure.label()
    );

    // 1. Produce a high-detection test (no duration constraint).
    let (constraints, loop_cfg) = presets::preset(structure, Scale::Reduced);
    let h = Harpocrates::new(
        Generator::new(constraints),
        Evaluator::new(OooCore::default(), structure),
        loop_cfg,
    );
    let report = h.run();
    let test = &report.champion;
    let golden = Machine::new(test, NativeFu)
        .run(10_000_000)
        .expect("golden run")
        .signature;

    // 2. Simulate a fleet: 60 CPUs, 10 of which shipped with a latent
    //    stuck-at defect in the integer adder (a DPPM disaster worthy of
    //    Fig. 1).
    let mut rng = StdRng::seed_from_u64(0xF1EE7);
    let fleet: Vec<Option<GateFault>> = (0..60)
        .map(|i| {
            (i % 6 == 0).then(|| GateFault {
                unit: GradedUnit::IntAdder,
                gate: rng.random_range(0..GradedUnit::IntAdder.gate_count() as u32),
                stuck_one: rng.random_bool(0.5),
            })
        })
        .collect();

    // 3. Run the screening test on every CPU and compare signatures.
    let mut caught = 0;
    let mut missed = 0;
    let mut healthy_flagged = 0;
    for (i, defect) in fleet.iter().enumerate() {
        let deviates = match defect {
            None => {
                let out = Machine::new(test, NativeFu).run(10_000_000);
                out.map(|o| o.signature != golden).unwrap_or(true)
            }
            Some(f) => {
                let out = Machine::new(test, FaultyFu::new(*f)).run(10_000_000);
                out.map(|o| o.signature != golden).unwrap_or(true)
            }
        };
        match (defect.is_some(), deviates) {
            (true, true) => {
                caught += 1;
                println!("cpu{i:02}: DEFECTIVE — isolated (gate fault detected)");
            }
            (true, false) => {
                missed += 1;
                println!("cpu{i:02}: defective but SILENT — escaped this test");
            }
            (false, true) => healthy_flagged += 1,
            (false, false) => {}
        }
    }
    println!(
        "\nscreen result: {caught}/{} defective CPUs isolated, {missed} escaped, {healthy_flagged} false alarms",
        caught + missed
    );
}
