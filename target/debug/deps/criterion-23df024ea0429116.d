/root/repo/target/debug/deps/criterion-23df024ea0429116.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-23df024ea0429116.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-23df024ea0429116.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
