#![warn(missing_docs)]

//! # Harpocrates — hardware-in-the-loop CPU test program generation
//!
//! A from-scratch Rust reproduction of *"Harpocrates: Breaking the Silence
//! of CPU Faults through Hardware-in-the-Loop Program Generation"*
//! (ISCA 2024). This facade crate re-exports the full workspace API; see
//! `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! ## Crates
//!
//! * [`isa`] — the HX86 ISA, functional execution engine and assembler
//! * [`gates`] — gate-level functional-unit netlists with stuck-at faults
//! * [`uarch`] — the out-of-order microarchitectural evaluation engine
//! * [`coverage`] — ACE lifetime analysis and the IBR metric
//! * [`faultsim`] — statistical fault injection and outcome grading
//! * [`museqgen`] — the constrained-random generator and mutation engine
//! * [`baselines`] — SiliFuzz-, OpenDCDiag- and MiBench-like comparators
//! * [`core`] — the Harpocrates Generator–Mutator–Evaluator loop
//! * [`telemetry`] — the run journal, metrics registry and stage spans

pub use harpo_baselines as baselines;
pub use harpo_core as core;
pub use harpo_coverage as coverage;
pub use harpo_faultsim as faultsim;
pub use harpo_gates as gates;
pub use harpo_isa as isa;
pub use harpo_museqgen as museqgen;
pub use harpo_telemetry as telemetry;
pub use harpo_uarch as uarch;
