//! Checkpointed-replay equivalence corpus.
//!
//! The checkpointed replay engine (golden trail seek + reconvergence
//! early-exit) is a pure performance transform: campaign tallies must be
//! **bit-identical** with checkpointing on and off, for every target
//! structure, over generated programs. This suite is the enforcement of
//! that invariant (and of thread-count determinism while we are at it).

use harpo_coverage::TargetStructure;
use harpo_faultsim::{measure_detection, CampaignConfig, CampaignResult, L1dProtection};
use harpo_isa::program::Program;
use harpo_museqgen::{GenConstraints, Generator};
use harpo_uarch::OooCore;

const STRUCTURES: [TargetStructure; 4] = [
    TargetStructure::Irf,
    TargetStructure::Xrf,
    TargetStructure::L1d,
    TargetStructure::IntAdder,
];

fn corpus() -> Vec<Program> {
    let mut progs = Vec::new();
    // Plain ALU programs, memory-heavy programs, and SSE programs: the
    // three plan families (reg flips, load flips + end corruption, xmm
    // flips) all need coverage.
    for (seed, n_insts, allow_sse, store_bias) in [
        (11u64, 120usize, false, 0.0f64),
        (23, 400, false, 0.35),
        (37, 900, true, 0.2),
        (53, 250, true, 0.5),
    ] {
        let c = GenConstraints {
            n_insts,
            allow_sse,
            store_bias,
            ..GenConstraints::default()
        };
        progs.push(Generator::new(c).generate(seed));
    }
    progs
}

fn cfg(interval: u64, threads: usize, l1d: L1dProtection) -> CampaignConfig {
    CampaignConfig {
        n_faults: 64,
        seed: 0xE9_01AD,
        threads,
        cap: 10_000_000,
        l1d_protection: l1d,
        checkpoint_interval: interval,
        ..CampaignConfig::default()
    }
}

/// Strips the perf-only counters that legitimately differ between the
/// checkpointed and full paths, keeping every outcome tally.
fn outcome_tallies(r: &CampaignResult) -> CampaignResult {
    let mut t = *r;
    t.replay_insts = 0;
    t.replay_insts_skipped = 0;
    t.checkpoint_hits = 0;
    t.early_exits = 0;
    t.replay_len = Default::default();
    t
}

#[test]
fn checkpointed_campaigns_match_full_campaigns_bit_for_bit() {
    let core = OooCore::default();
    let mut any_hit = false;
    let mut any_exit = false;
    for (pi, p) in corpus().iter().enumerate() {
        for structure in STRUCTURES {
            let full = measure_detection(p, structure, &core, &cfg(0, 2, L1dProtection::None))
                .expect("golden run");
            let ck = measure_detection(p, structure, &core, &cfg(64, 2, L1dProtection::None))
                .expect("golden run");
            assert_eq!(
                outcome_tallies(&full),
                outcome_tallies(&ck),
                "program {pi} / {structure}: checkpointing changed the tallies"
            );
            any_hit |= ck.checkpoint_hits > 0;
            any_exit |= ck.early_exits > 0;
            assert_eq!(full.checkpoint_hits, 0);
            assert_eq!(full.early_exits, 0);
            assert_eq!(full.replay_insts_skipped, 0);
        }
    }
    assert!(any_hit, "corpus never exercised a checkpoint seek");
    assert!(
        any_exit,
        "corpus never exercised a reconvergence early-exit"
    );
}

#[test]
fn secded_tallies_unchanged_by_checkpointing() {
    let core = OooCore::default();
    let p = &corpus()[1];
    let full = measure_detection(
        p,
        TargetStructure::L1d,
        &core,
        &cfg(0, 2, L1dProtection::Secded),
    )
    .expect("golden run");
    let ck = measure_detection(
        p,
        TargetStructure::L1d,
        &core,
        &cfg(64, 2, L1dProtection::Secded),
    )
    .expect("golden run");
    assert_eq!(outcome_tallies(&full), outcome_tallies(&ck));
    assert_eq!(full.corrected, ck.corrected);
}

#[test]
fn thread_count_does_not_change_results() {
    let core = OooCore::default();
    let p = &corpus()[2];
    for structure in STRUCTURES {
        let one = measure_detection(p, structure, &core, &cfg(64, 1, L1dProtection::None))
            .expect("golden run");
        let three = measure_detection(p, structure, &core, &cfg(64, 3, L1dProtection::None))
            .expect("golden run");
        assert_eq!(one, three, "{structure}: thread count changed the result");
    }
}
