/root/repo/target/debug/deps/harpo_core-6cd90840ca9c0c1e.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/debug/deps/harpo_core-6cd90840ca9c0c1e: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/evaluator.rs:
crates/core/src/memo.rs:
crates/core/src/presets.rs:
