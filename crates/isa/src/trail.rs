//! Golden checkpoint trail for divergence-bounded fault replay.
//!
//! A [`GoldenTrail`] is recorded once per program from a golden
//! functional run: periodic architectural snapshots plus a global,
//! dyn-ordered *store delta log* (the copy-on-write view of memory — a
//! store's address/size/value triple is enough to reconstruct the
//! region at any checkpoint from the initial [`crate::mem::MemImage`]).
//! Fault replays use it in two ways:
//!
//! * **seek** — a replay whose first corruption lands at dynamic
//!   instruction `d` restores the nearest checkpoint at or before `d`
//!   ([`GoldenTrail::checkpoint_before`], [`GoldenTrail::apply_deltas`],
//!   [`crate::exec::Machine::restore`]) instead of re-executing the
//!   golden prefix;
//! * **reconvergence** — past its last corruption point the faulty run
//!   is compared against the trail at checkpoint boundaries; equality
//!   of registers and touched memory proves the rest of the run is
//!   bit-identical to the golden one, so the replay can stop early.
//!
//! The prefix skipped by a seek is sound because the replay machinery
//! only ever *observes* state before the first corruption point — the
//! golden prefix of a faulty run is bit-identical to the golden run by
//! construction.

use crate::exec::{Machine, Trap};
use crate::fu::NativeFu;
use crate::mem::Memory;
use crate::program::Program;
use crate::state::ArchState;

/// One store of the golden run, in retirement order: applying the log's
/// prefix to the initial memory image reproduces memory at any
/// checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDelta {
    /// Effective address of the store.
    pub addr: u64,
    /// Store size in bytes (1, 2, 4, 8 or 16).
    pub size: u8,
    /// Stored bytes as two little-endian 64-bit lanes (lane 1 is only
    /// meaningful for 16-byte stores).
    pub val: [u64; 2],
}

impl MemDelta {
    /// Writes the delta into `mem`. The address was in bounds when the
    /// golden run performed the store, so this cannot fault on the same
    /// image.
    #[inline]
    pub fn apply(&self, mem: &mut Memory) {
        if self.size == 16 {
            mem.write128(self.addr, self.val).expect("golden store");
        } else {
            mem.write(self.addr, self.size as u32, self.val[0])
                .expect("golden store");
        }
    }
}

/// A periodic snapshot of the golden run: the architectural register
/// state after `dyn_idx` retired instructions, plus the store-delta-log
/// prefix that reproduces memory at that point.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Dynamic instructions retired before this point.
    pub dyn_idx: u64,
    /// Architectural register state at this point.
    pub state: ArchState,
    /// Number of [`MemDelta`] entries applied at this point.
    pub deltas: usize,
}

/// The golden run's checkpoint trail: snapshots every `interval` dynamic
/// instructions (plus one at dyn 0 and one at halt) over a shared store
/// delta log.
#[derive(Debug, Clone)]
pub struct GoldenTrail {
    interval: u64,
    checkpoints: Vec<Checkpoint>,
    deltas: Vec<MemDelta>,
    end_dyn: u64,
}

impl GoldenTrail {
    /// Records the trail by running `prog` functionally to completion,
    /// snapshotting every `interval` retired instructions.
    ///
    /// # Errors
    /// Any [`Trap`] of the golden run, including [`Trap::InstructionCap`]
    /// at `cap` — a program whose golden run traps has no valid trail.
    ///
    /// # Panics
    /// If `interval` is zero.
    pub fn record(prog: &Program, cap: u64, interval: u64) -> Result<GoldenTrail, Trap> {
        assert!(interval > 0, "checkpoint interval must be positive");
        let mut m = Machine::new(prog, NativeFu);
        let mut trail = GoldenTrail {
            interval,
            checkpoints: Vec::new(),
            deltas: Vec::new(),
            end_dyn: 0,
        };
        trail.checkpoints.push(Checkpoint {
            dyn_idx: 0,
            state: m.state().clone(),
            deltas: 0,
        });
        loop {
            if m.dyn_count() >= cap {
                return Err(Trap::InstructionCap);
            }
            let acc = match m.step()? {
                None => break,
                Some(info) => info.mem,
            };
            if let Some(acc) = acc.filter(|a| a.is_store) {
                // Hooks see stores before they land, so the value is
                // read back from memory after the step instead.
                let val = if acc.size == 16 {
                    m.mem().read128(acc.addr).expect("golden store")
                } else {
                    [
                        m.mem()
                            .read(acc.addr, acc.size as u32)
                            .expect("golden store"),
                        0,
                    ]
                };
                trail.deltas.push(MemDelta {
                    addr: acc.addr,
                    size: acc.size,
                    val,
                });
            }
            if m.dyn_count().is_multiple_of(interval) && !m.halted() {
                trail.checkpoints.push(Checkpoint {
                    dyn_idx: m.dyn_count(),
                    state: m.state().clone(),
                    deltas: trail.deltas.len(),
                });
            }
        }
        trail.end_dyn = m.dyn_count();
        // The final checkpoint carries the halted state; drop a same-dyn
        // mid-run snapshot (a run whose length is a multiple of the
        // interval) so checkpoint dyn indices stay strictly increasing.
        if trail
            .checkpoints
            .last()
            .is_some_and(|c| c.dyn_idx == trail.end_dyn)
        {
            trail.checkpoints.pop();
        }
        trail.checkpoints.push(Checkpoint {
            dyn_idx: trail.end_dyn,
            state: m.state().clone(),
            deltas: trail.deltas.len(),
        });
        Ok(trail)
    }

    /// The snapshot interval in dynamic instructions.
    #[inline]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Dynamic length of the golden run.
    #[inline]
    pub fn end_dyn(&self) -> u64 {
        self.end_dyn
    }

    /// All checkpoints, in strictly increasing `dyn_idx` order.
    #[inline]
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Total store-delta-log length.
    #[inline]
    pub fn delta_len(&self) -> usize {
        self.deltas.len()
    }

    /// The final (halted) architectural state of the golden run.
    pub fn final_state(&self) -> &ArchState {
        &self
            .checkpoints
            .last()
            .expect("trail has checkpoints")
            .state
    }

    /// The latest checkpoint at or before `dyn_idx` (clamped to the
    /// final checkpoint for indices past the end of the run).
    pub fn checkpoint_before(&self, dyn_idx: u64) -> &Checkpoint {
        let i = self.checkpoints.partition_point(|c| c.dyn_idx <= dyn_idx);
        &self.checkpoints[i - 1]
    }

    /// Index into [`GoldenTrail::checkpoints`] of the first checkpoint
    /// strictly after `dyn_idx` (`checkpoints().len()` if none).
    pub fn next_checkpoint_idx(&self, dyn_idx: u64) -> usize {
        self.checkpoints.partition_point(|c| c.dyn_idx <= dyn_idx)
    }

    /// Applies store-delta-log entries `[from, to)` to `mem`, advancing
    /// it from the memory state of one checkpoint to another's.
    pub fn apply_deltas(&self, from: usize, to: usize, mem: &mut Memory) {
        for d in &self.deltas[from..to] {
            d.apply(mem);
        }
    }

    /// The store-delta-log entries `[from, to)`.
    #[inline]
    pub fn deltas(&self, from: usize, to: usize) -> &[MemDelta] {
        &self.deltas[from..to]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::mem::DATA_BASE;
    use crate::reg::Gpr::*;
    use crate::reg::Width::*;

    fn store_loop() -> Program {
        let mut a = Asm::new("trail");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rcx, 40);
        a.label("w");
        a.add_rr(B64, Rax, Rcx);
        a.store(B64, Rsi, 0, Rax);
        a.add_ri(B64, Rsi, 8);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("w");
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn checkpoints_match_reexecuted_prefixes() {
        let p = store_loop();
        let trail = GoldenTrail::record(&p, 1_000_000, 16).unwrap();
        assert!(trail.checkpoints().len() > 3);
        for ck in trail.checkpoints() {
            // Re-execute the prefix from scratch and compare.
            let mut m = Machine::new(&p, NativeFu);
            while m.dyn_count() < ck.dyn_idx {
                m.step().unwrap().unwrap();
            }
            assert_eq!(m.state(), &ck.state, "state at dyn {}", ck.dyn_idx);
            let mut mem = p.mem.build();
            trail.apply_deltas(0, ck.deltas, &mut mem);
            assert_eq!(
                mem.as_bytes(),
                m.mem().as_bytes(),
                "mem at dyn {}",
                ck.dyn_idx
            );
        }
    }

    #[test]
    fn restore_then_run_matches_full_run() {
        let p = store_loop();
        let trail = GoldenTrail::record(&p, 1_000_000, 32).unwrap();
        let golden = Machine::new(&p, NativeFu).run(1_000_000).unwrap();
        // Seek to a mid-run checkpoint and run to completion.
        let ck = trail.checkpoint_before(trail.end_dyn() / 2);
        assert!(ck.dyn_idx > 0, "mid-run checkpoint exists");
        let mut m = Machine::new(&p, NativeFu);
        trail.apply_deltas(0, ck.deltas, m.mem_mut());
        m.restore(&ck.state, ck.dyn_idx);
        let out = m.run(1_000_000).unwrap();
        assert_eq!(out.signature, golden.signature);
        assert_eq!(out.dyn_count, golden.dyn_count);
    }

    #[test]
    fn final_checkpoint_is_halted_end_state() {
        let p = store_loop();
        let trail = GoldenTrail::record(&p, 1_000_000, 64).unwrap();
        let golden = Machine::new(&p, NativeFu).run(1_000_000).unwrap();
        assert_eq!(trail.end_dyn(), golden.dyn_count);
        assert!(trail.final_state().halted);
        assert_eq!(trail.final_state(), &golden.state);
        // Checkpoint dyn indices are strictly increasing.
        for w in trail.checkpoints().windows(2) {
            assert!(w[0].dyn_idx < w[1].dyn_idx);
        }
        // Seeking past the end lands on the final checkpoint.
        assert_eq!(trail.checkpoint_before(u64::MAX).dyn_idx, trail.end_dyn());
    }

    #[test]
    fn trapping_program_has_no_trail() {
        let mut a = Asm::new("oob");
        a.mov_ri64(Rsi, 0xDEAD_0000);
        a.load(B64, Rax, Rsi, 0);
        a.halt();
        let p = a.finish().unwrap();
        assert!(GoldenTrail::record(&p, 1_000_000, 16).is_err());
    }
}
