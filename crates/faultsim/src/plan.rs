//! Trace-directed corruption planning.
//!
//! Converts a random physical fault — `(physical register, bit, cycle)`
//! or `(set, way, bit, cycle)` — into the concrete software-visible
//! corruptions it would cause, using the golden run's residency and
//! access schedule (DESIGN.md §6). Faults that provably never reach a
//! consumer are resolved **Masked** here without any replay, which is
//! the dominant fast path of statistical campaigns.

use crate::fault::{IrfFault, L1dFault, XrfFault};
use harpo_isa::reg::{Gpr, Xmm};
use harpo_uarch::cache::LineEventKind;
use harpo_uarch::{CoreConfig, ExecutionTrace};
use serde::{Deserialize, Serialize};

/// How a planned corruption manifests on the read value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptKind {
    /// Transient single-event upset: the stored bit is inverted.
    Flip,
    /// Intermittent stuck-at: reads during the burst observe the bit
    /// forced to a constant (the cell recovers after the burst).
    Stuck(bool),
}

/// One planned flip of a register operand read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegFlip {
    /// Dynamic instruction whose read is corrupted.
    pub dyn_idx: u64,
    /// The architectural register being read.
    pub arch: Gpr,
    /// Bit to flip.
    pub bit: u8,
    /// Transient flip or intermittent stuck-at.
    pub kind: CorruptKind,
}

/// One planned flip of an XMM operand read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct XmmFlip {
    /// Dynamic instruction whose read is corrupted.
    pub dyn_idx: u64,
    /// The architectural XMM register being read.
    pub arch: Xmm,
    /// Bit to flip (0–127 across the two lanes).
    pub bit: u8,
}

/// One planned flip of a loaded value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadFlip {
    /// Dynamic instruction whose load is corrupted.
    pub dyn_idx: u64,
    /// Byte address holding the corrupted bit.
    pub addr: u64,
    /// Bit within that byte (0–7).
    pub bit: u8,
}

/// The corruption plan for one transient fault: the set of reads that
/// observe the flipped bit. An empty plan means the fault is masked.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorruptionPlan {
    /// Register-read flips, in dynamic order.
    pub reg_flips: Vec<RegFlip>,
    /// XMM-read flips, in dynamic order.
    pub xmm_flips: Vec<XmmFlip>,
    /// Load flips, in dynamic order.
    pub load_flips: Vec<LoadFlip>,
    /// A bit still corrupted in the cache or memory when the program
    /// ends. The output signature is computed over the data the checker
    /// reads back *through the cache*, so residual corruption is an SDC
    /// even if no instruction loaded the byte — this is how checking
    /// tests catch faults in written-then-unread data.
    pub end_corruption: Option<(u64, u8)>,
    /// A bit corrupted in a register that holds the *final* architectural
    /// value: the checker hashes the end-state registers, so the flip is
    /// architecturally visible even with no explicit consumer.
    pub end_reg_corruption: Option<(Gpr, u8)>,
    /// The XMM analogue of `end_reg_corruption`.
    pub end_xmm_corruption: Option<(Xmm, u8)>,
}

impl CorruptionPlan {
    /// True when no consumer ever observes the fault.
    pub fn is_empty(&self) -> bool {
        self.reg_flips.is_empty()
            && self.xmm_flips.is_empty()
            && self.load_flips.is_empty()
            && self.end_corruption.is_none()
            && self.end_reg_corruption.is_none()
            && self.end_xmm_corruption.is_none()
    }

    /// True when the plan carries end-of-run corruption that must be
    /// applied to the final state regardless of how execution unfolds.
    pub fn has_end_corruption(&self) -> bool {
        self.end_corruption.is_some()
            || self.end_reg_corruption.is_some()
            || self.end_xmm_corruption.is_some()
    }

    /// Dynamic index of the earliest planned flip — the replay before it
    /// is bit-identical to the golden run, so a checkpointed replay may
    /// seek over that prefix. `u64::MAX` when the plan carries only
    /// end-of-run corruption (the whole run is golden).
    pub fn first_flip_dyn(&self) -> u64 {
        let reg = self.reg_flips.iter().map(|f| f.dyn_idx).min();
        let xmm = self.xmm_flips.iter().map(|f| f.dyn_idx).min();
        let load = self.load_flips.iter().map(|f| f.dyn_idx).min();
        [reg, xmm, load]
            .into_iter()
            .flatten()
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Dynamic index from which no planned flip can fire any more (last
    /// flip + 1). Past this point a replay that matches the golden state
    /// is provably Masked — unless end-of-run corruption is pending, in
    /// which case this returns `u64::MAX` so the replay runs to the
    /// signature check.
    pub fn quiesce_dyn(&self) -> u64 {
        if self.has_end_corruption() {
            return u64::MAX;
        }
        let reg = self.reg_flips.iter().map(|f| f.dyn_idx).max();
        let xmm = self.xmm_flips.iter().map(|f| f.dyn_idx).max();
        let load = self.load_flips.iter().map(|f| f.dyn_idx).max();
        [reg, xmm, load]
            .into_iter()
            .flatten()
            .max()
            .map_or(0, |d| d + 1)
    }
}

/// Plans an IRF transient: find the value instance resident in the
/// faulted physical register at the fault cycle; every later read of
/// that instance observes the flip.
pub fn plan_irf(trace: &ExecutionTrace, f: &IrfFault) -> CorruptionPlan {
    let mut plan = CorruptionPlan::default();
    for inst in &trace.reg_instances {
        if inst.preg != f.preg || f.cycle < inst.write_cycle || f.cycle >= inst.free_cycle {
            continue;
        }
        for r in trace.reads_of(inst) {
            if r.cycle >= f.cycle {
                plan.reg_flips.push(RegFlip {
                    dyn_idx: r.dyn_idx,
                    arch: inst.arch,
                    bit: f.bit,
                    kind: CorruptKind::Flip,
                });
            }
        }
        if inst.live_at_end {
            plan.end_reg_corruption = Some((inst.arch, f.bit));
        }
        break;
    }
    plan
}

/// Plans an XMM-register-file transient, mirroring [`plan_irf`] over the
/// 128-bit instances.
pub fn plan_xrf(trace: &ExecutionTrace, f: &XrfFault) -> CorruptionPlan {
    let mut plan = CorruptionPlan::default();
    for inst in &trace.xmm_instances {
        if inst.preg != f.preg || f.cycle < inst.write_cycle || f.cycle >= inst.free_cycle {
            continue;
        }
        for r in trace.xmm_reads_of(inst) {
            if r.cycle >= f.cycle {
                plan.xmm_flips.push(XmmFlip {
                    dyn_idx: r.dyn_idx,
                    arch: inst.arch,
                    bit: f.bit,
                });
            }
        }
        if inst.live_at_end {
            plan.end_xmm_corruption = Some((inst.arch, f.bit));
        }
        break;
    }
    plan
}

/// Plans an intermittent IRF stuck-at asserted during the cycle burst
/// `[from, to)`: every read of the faulted physical register's resident
/// value inside the burst observes the bit forced to `stuck_one`
/// (read-disturb model — the cell recovers once the burst ends; see
/// DESIGN.md).
pub fn plan_irf_intermittent(
    trace: &ExecutionTrace,
    preg: u16,
    bit: u8,
    stuck_one: bool,
    from: u64,
    to: u64,
) -> CorruptionPlan {
    let mut plan = CorruptionPlan::default();
    for inst in &trace.reg_instances {
        if inst.preg != preg || inst.write_cycle >= to || inst.free_cycle <= from {
            continue;
        }
        for r in trace.reads_of(inst) {
            if r.cycle >= from && r.cycle < to {
                plan.reg_flips.push(RegFlip {
                    dyn_idx: r.dyn_idx,
                    arch: inst.arch,
                    bit,
                    kind: CorruptKind::Stuck(stuck_one),
                });
            }
        }
    }
    plan.reg_flips.sort_by_key(|f| f.dyn_idx);
    plan
}

#[derive(Debug, Clone, Copy)]
enum ByteEvent {
    /// The line containing the byte is filled into a frame.
    Fill,
    /// The line is evicted (dirty → written back).
    Evict { dirty: bool },
    /// An access covering the byte.
    Access { dyn_idx: u64, is_store: bool },
}

/// Plans an L1D transient: locate the line resident in `(set, way)` at
/// the fault cycle, then track the corrupted byte through loads, stores,
/// evictions (dirty write-back propagates the corruption to memory) and
/// refills until it is healed or the program ends.
pub fn plan_l1d(trace: &ExecutionTrace, _cfg: &CoreConfig, f: &L1dFault) -> CorruptionPlan {
    let mut plan = CorruptionPlan::default();

    // 1. Which line occupied the faulted frame at the fault cycle?
    let mut resident: Option<u64> = None;
    for e in &trace.line_events {
        if e.set != f.set || e.way != f.way || e.cycle > f.cycle {
            continue;
        }
        match e.kind {
            LineEventKind::Fill => resident = Some(e.line_addr),
            _ => resident = None,
        }
    }
    let Some(line_addr) = resident else {
        return plan; // frame invalid at fault time → masked
    };
    let byte_addr = line_addr + (f.bit as u64 / 8);
    let bit_in_byte = (f.bit % 8) as u8;

    // 2. Chronological event stream for that byte: fills/evicts of its
    //    line (any frame) + accesses covering the byte.
    let mut events: Vec<(u64, u8, ByteEvent)> = Vec::new();
    for e in &trace.line_events {
        if e.line_addr != line_addr {
            continue;
        }
        match e.kind {
            LineEventKind::Fill => events.push((e.cycle, 1, ByteEvent::Fill)),
            LineEventKind::EvictClean => {
                events.push((e.cycle, 0, ByteEvent::Evict { dirty: false }))
            }
            LineEventKind::EvictDirty => {
                events.push((e.cycle, 0, ByteEvent::Evict { dirty: true }))
            }
        }
    }
    for a in &trace.cache_accesses {
        if a.addr <= byte_addr && byte_addr < a.addr + a.size as u64 {
            events.push((
                a.cycle,
                2,
                ByteEvent::Access {
                    dyn_idx: a.dyn_idx,
                    is_store: a.is_store,
                },
            ));
        }
    }
    events.sort_by_key(|&(c, p, e)| {
        (
            c,
            p,
            match e {
                ByteEvent::Access { dyn_idx, .. } => dyn_idx,
                _ => 0,
            },
        )
    });

    // 3. Walk forward from the fault, tracking where the corruption lives.
    let mut cache_corrupt = true;
    let mut mem_corrupt = false;
    for &(cycle, _, ev) in events.iter().filter(|&&(c, _, _)| c >= f.cycle) {
        let _ = cycle;
        match ev {
            ByteEvent::Access { dyn_idx, is_store } => {
                if is_store {
                    if cache_corrupt {
                        // New data overwrites the flipped byte; the dirty
                        // line will eventually write back correct data.
                        cache_corrupt = false;
                        mem_corrupt = false;
                    }
                    // Store while only memory is corrupt: the line in
                    // cache (freshly filled, corrupt) — handled by the
                    // cache_corrupt flag via Fill below.
                } else if cache_corrupt {
                    plan.load_flips.push(LoadFlip {
                        dyn_idx,
                        addr: byte_addr,
                        bit: bit_in_byte,
                    });
                }
            }
            ByteEvent::Evict { dirty } => {
                if cache_corrupt {
                    mem_corrupt = dirty || mem_corrupt;
                    cache_corrupt = false;
                }
            }
            ByteEvent::Fill => {
                if mem_corrupt {
                    cache_corrupt = true;
                }
            }
        }
        if !cache_corrupt && !mem_corrupt {
            break;
        }
    }
    if cache_corrupt || mem_corrupt {
        plan.end_corruption = Some((byte_addr, bit_in_byte));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::asm::Asm;
    use harpo_isa::mem::DATA_BASE;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;
    use harpo_uarch::OooCore;

    fn sim(a: Asm) -> (harpo_isa::program::Program, harpo_uarch::SimResult) {
        let p = a.finish().unwrap();
        let r = OooCore::default().simulate(&p, 1_000_000).unwrap();
        (p, r)
    }

    #[test]
    fn irf_fault_on_read_value_planned() {
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rax, 5);
        a.add_rr(B64, Rbx, Rax); // reads the rax instance
        a.halt();
        let (_, r) = sim(a);
        let inst = r
            .trace
            .reg_instances
            .iter()
            .find(|i| i.writer == 0)
            .unwrap();
        let fault = IrfFault {
            preg: inst.preg,
            bit: 3,
            cycle: inst.write_cycle,
        };
        let plan = plan_irf(&r.trace, &fault);
        assert_eq!(plan.reg_flips.len(), 1);
        assert_eq!(plan.reg_flips[0].arch, Rax);
        assert_eq!(plan.reg_flips[0].dyn_idx, 1);
    }

    #[test]
    fn irf_fault_after_last_read_masked() {
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rax, 5);
        a.add_rr(B64, Rbx, Rax); // last read of the first rax instance
        a.mov_ri(B64, Rax, 0); // overwrite: the instance dies unread
        a.halt();
        let (_, r) = sim(a);
        let inst = r
            .trace
            .reg_instances
            .iter()
            .find(|i| i.writer == 0)
            .unwrap();
        assert!(!inst.live_at_end, "instance was overwritten");
        let last_read = r.trace.reads_of(inst).last().unwrap().cycle;
        let fault = IrfFault {
            preg: inst.preg,
            bit: 0,
            cycle: last_read + 1,
        };
        // The flip lands after the last read and the value never reaches
        // the final state → provably masked without a replay.
        if fault.cycle < inst.free_cycle {
            assert!(plan_irf(&r.trace, &fault).is_empty());
        }
    }

    #[test]
    fn irf_fault_on_final_mapping_plans_end_corruption() {
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rax, 5); // never overwritten → hashed by the checker
        a.halt();
        let (_, r) = sim(a);
        let inst = r
            .trace
            .reg_instances
            .iter()
            .find(|i| i.writer == 0)
            .unwrap();
        assert!(inst.live_at_end);
        let fault = IrfFault {
            preg: inst.preg,
            bit: 7,
            cycle: inst.write_cycle, // short program: stay inside the window
        };
        let plan = plan_irf(&r.trace, &fault);
        assert_eq!(plan.end_reg_corruption, Some((Rax, 7)));
    }

    #[test]
    fn irf_fault_on_unoccupied_preg_masked() {
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rax, 5);
        a.halt();
        let (_, r) = sim(a);
        // A high physical register never allocated in this short run.
        let used: std::collections::HashSet<u16> =
            r.trace.reg_instances.iter().map(|i| i.preg).collect();
        let free = (0..128u16).find(|p| !used.contains(p)).unwrap();
        let fault = IrfFault {
            preg: free,
            bit: 0,
            cycle: 1,
        };
        assert!(plan_irf(&r.trace, &fault).is_empty());
    }

    #[test]
    fn l1d_fault_before_load_planned() {
        let mut a = Asm::new("t");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.store(B64, Rsi, 0, Rax); // fill + dirty
        a.load(B64, Rbx, Rsi, 0); // read back
        a.halt();
        let (_, r) = sim(a);
        let store = r.trace.cache_accesses.iter().find(|x| x.is_store).unwrap();
        let load = r.trace.cache_accesses.iter().find(|x| !x.is_store).unwrap();
        assert!(
            load.cycle > store.cycle,
            "store commits before load issues in this toy case"
        );
        let fault = L1dFault {
            set: store.set,
            way: store.way,
            bit: ((store.addr % 64) * 8) as u16, // bit 0 of the stored byte
            cycle: store.cycle + 1,              // flip after the store lands
        };
        let plan = plan_l1d(&r.trace, &CoreConfig::default(), &fault);
        assert_eq!(plan.load_flips.len(), 1);
        assert_eq!(plan.load_flips[0].addr, store.addr);
        assert_eq!(plan.load_flips[0].dyn_idx, load.dyn_idx);
    }

    #[test]
    fn l1d_fault_overwritten_by_store_masked() {
        let mut a = Asm::new("t");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.load(B64, Rbx, Rsi, 0); // fill (clean)
        a.store(B64, Rsi, 0, Rax); // overwrite the faulted byte
        a.load(B64, Rcx, Rsi, 0); // later load sees the *stored* value
        a.halt();
        let (_, r) = sim(a);
        let first_load = r.trace.cache_accesses.iter().find(|x| !x.is_store).unwrap();
        let store = r.trace.cache_accesses.iter().find(|x| x.is_store).unwrap();
        // Fault strictly between the first load and the store.
        let fault = L1dFault {
            set: first_load.set,
            way: first_load.way,
            bit: 0,
            cycle: first_load.cycle + 1,
        };
        assert!(store.cycle > first_load.cycle + 1);
        let plan = plan_l1d(&r.trace, &CoreConfig::default(), &fault);
        assert!(plan.is_empty(), "store healed the fault: {:?}", plan);
    }

    #[test]
    fn l1d_fault_in_invalid_frame_masked() {
        let mut a = Asm::new("t");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.load(B64, Rbx, Rsi, 0);
        a.halt();
        let (_, r) = sim(a);
        let acc = &r.trace.cache_accesses[0];
        // A different set was never filled.
        let fault = L1dFault {
            set: (acc.set + 1) % CoreConfig::default().l1d_sets(),
            way: 0,
            bit: 0,
            cycle: acc.cycle,
        };
        assert!(plan_l1d(&r.trace, &CoreConfig::default(), &fault).is_empty());
    }

    #[test]
    fn l1d_dirty_eviction_propagates_to_refill() {
        // Direct-mapped cache: store the victim line, evict it with one
        // conflicting store (dirty write-back carries the corruption to
        // memory), then reload it after a long dependency chain (so the
        // reload's issue provably follows the eviction).
        let cfg = CoreConfig {
            l1d_assoc: 1,
            ..CoreConfig::default()
        };
        let mut a = Asm::new("t");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mem.data_size = 64 * 1024;
        a.mov_ri(B64, Rax, 0x77);
        a.store(B64, Rsi, 0, Rax); // victim line, dirtied
                                   // Conflicting line: DATA_BASE + sets×line stride hits set 0 too.
                                   // A short dependency chain delays the evicting store past the
                                   // victim store's commit, keeping event order deterministic.
        let stride = (cfg.l1d_sets() * cfg.l1d_line) as i32;
        a.mov_ri(B64, Rbx, 1);
        for _ in 0..4 {
            a.imul_rr(B64, Rbx, Rbx);
        }
        a.op_rr(harpo_isa::form::Mnemonic::Xor, B64, Rbx, Rbx); // 0, dependent
        a.mov_rr(B64, Rdi, Rsi);
        a.add_ri(B64, Rdi, stride);
        a.add_rr(B64, Rdi, Rbx);
        a.store(B64, Rdi, 0, Rax); // evicts the victim (dirty)
                                   // Delay the reload with a serial multiply chain feeding its base.
        a.mov_ri(B64, Rbp, 1);
        for _ in 0..30 {
            a.imul_rr(B64, Rbp, Rbp);
        }
        a.op_rr(harpo_isa::form::Mnemonic::Xor, B64, Rbp, Rbp); // 0, still dependent
        a.add_rr(B64, Rbp, Rsi);
        a.load(B64, Rcx, Rbp, 0); // reload victim from (corrupted) memory
        a.halt();
        let p = a.finish().unwrap();
        let r = OooCore::new(cfg.clone()).simulate(&p, 1_000_000).unwrap();
        let store = r.trace.cache_accesses.iter().find(|x| x.is_store).unwrap();
        // Eviction must come after the fault for the scenario to hold.
        let evict = r
            .trace
            .line_events
            .iter()
            .find(|e| e.kind == LineEventKind::EvictDirty && e.line_addr == store.addr & !63)
            .expect("victim evicted dirty");
        assert!(evict.cycle > store.cycle + 1);
        let fault = L1dFault {
            set: store.set,
            way: store.way,
            bit: ((store.addr % 64) * 8) as u16,
            cycle: store.cycle + 1,
        };
        let plan = plan_l1d(&r.trace, &cfg, &fault);
        assert!(
            !plan.is_empty(),
            "corruption must survive dirty eviction + refill"
        );
        // The flip lands on the final reload.
        let last_load = r
            .trace
            .cache_accesses
            .iter()
            .rfind(|x| !x.is_store && x.addr == store.addr)
            .unwrap();
        assert!(plan
            .load_flips
            .iter()
            .any(|f| f.dyn_idx == last_load.dyn_idx));
    }
}
