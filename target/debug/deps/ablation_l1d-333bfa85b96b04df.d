/root/repo/target/debug/deps/ablation_l1d-333bfa85b96b04df.d: crates/bench/src/bin/ablation_l1d.rs

/root/repo/target/debug/deps/ablation_l1d-333bfa85b96b04df: crates/bench/src/bin/ablation_l1d.rs

crates/bench/src/bin/ablation_l1d.rs:
