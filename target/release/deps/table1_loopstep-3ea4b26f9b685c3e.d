/root/repo/target/release/deps/table1_loopstep-3ea4b26f9b685c3e.d: crates/bench/src/bin/table1_loopstep.rs

/root/repo/target/release/deps/table1_loopstep-3ea4b26f9b685c3e: crates/bench/src/bin/table1_loopstep.rs

crates/bench/src/bin/table1_loopstep.rs:
