/root/repo/target/release/deps/fault_model_study-f8e58d6d41f93e40.d: crates/bench/src/bin/fault_model_study.rs

/root/repo/target/release/deps/fault_model_study-f8e58d6d41f93e40: crates/bench/src/bin/fault_model_study.rs

crates/bench/src/bin/fault_model_study.rs:
