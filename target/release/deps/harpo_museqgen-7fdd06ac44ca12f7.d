/root/repo/target/release/deps/harpo_museqgen-7fdd06ac44ca12f7.d: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/release/deps/libharpo_museqgen-7fdd06ac44ca12f7.rlib: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/release/deps/libharpo_museqgen-7fdd06ac44ca12f7.rmeta: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

crates/museqgen/src/lib.rs:
crates/museqgen/src/constraints.rs:
crates/museqgen/src/generator.rs:
crates/museqgen/src/mutate.rs:
