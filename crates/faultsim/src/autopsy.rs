//! Per-fault forensics: autopsy records and bit-level heatmaps.
//!
//! Campaign tallies say *how many* faults stayed silent; an autopsy says
//! *why each one did*. When [`crate::CampaignConfig::forensics`] is on,
//! every injected fault produces a [`FaultAutopsy`]: where the corruption
//! first became architecturally visible, how far it propagated, and the
//! mechanism that masked it (or the detector that caught it). Autopsies
//! stream into the run journal as `autopsy` records (schema v3) and
//! aggregate per structure into [`StructureHeatmap`]s — a per-bit outcome
//! histogram with an optional ACE-residency overlay from
//! `harpo-coverage` — so a plateaued structure can be read bit by bit:
//! which cells the generator never exercises, and where corrupted values
//! go to die.
//!
//! Everything here is derived from state the campaign already computes
//! (corruption plans, activation spans, replay statistics); with
//! forensics off, no autopsy is ever constructed and campaigns run
//! exactly as before.

use crate::checkpoint::ReplayStats;
use crate::outcome::FaultOutcome;
use crate::plan::CorruptionPlan;
use harpo_isa::reg::{Gpr, Xmm};
use harpo_telemetry::{Record, Value};

/// How one fault was resolved — the masking mechanism for undetected
/// faults, the detector for detected ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// The corrupted cell was overwritten or never consumed: the plan is
    /// empty, so no replay was needed (transient fast path).
    Overwrite,
    /// Logically masked: for gate faults, the stuck-at never changed the
    /// unit's output over the whole operand stream; for replayed faults,
    /// the corruption was consumed but cancelled out in the program's
    /// dataflow before the signature check.
    Logical,
    /// The faulty run reconverged with the golden trail past the
    /// corruption window (checkpointed replay early exit).
    Reconverged,
    /// A hardware protection scheme (SECDED) corrected the bit before a
    /// consumer observed it.
    Corrected,
    /// Detected: the output signature differed (SDC caught by the
    /// checking test program).
    Signature,
    /// Detected: the faulty run trapped or hit the watchdog cap.
    Trap,
}

impl Mechanism {
    /// Journal label.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Overwrite => "overwrite",
            Mechanism::Logical => "logical",
            Mechanism::Reconverged => "reconverged",
            Mechanism::Corrected => "corrected",
            Mechanism::Signature => "signature",
            Mechanism::Trap => "trap",
        }
    }

    /// Classifies a replayed outcome.
    fn of_replay(outcome: FaultOutcome, early_exit: bool) -> Mechanism {
        match outcome {
            FaultOutcome::Sdc => Mechanism::Signature,
            FaultOutcome::Crash => Mechanism::Trap,
            FaultOutcome::Corrected => Mechanism::Corrected,
            FaultOutcome::Masked if early_exit => Mechanism::Reconverged,
            FaultOutcome::Masked => Mechanism::Logical,
        }
    }
}

/// The first architecturally visible divergence a fault causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceSite {
    /// No consumer ever observes the corruption.
    None,
    /// A corrupted GPR operand read.
    Register(Gpr),
    /// A corrupted XMM operand read.
    Xmm(Xmm),
    /// A corrupted loaded value at this byte address.
    Memory(u64),
    /// A corrupted functional-unit result (gate faults: the first
    /// activating pass through the defective unit).
    Fu,
    /// Residual corruption in a register holding a final architectural
    /// value, observed by the end-state checker.
    EndRegister(Gpr),
    /// The XMM analogue of [`DivergenceSite::EndRegister`].
    EndXmm(Xmm),
    /// Residual corruption in cache/memory at this byte address,
    /// observed by the checker reading back through the cache.
    EndMemory(u64),
}

impl DivergenceSite {
    /// Journal label of the site kind.
    pub fn label(self) -> &'static str {
        match self {
            DivergenceSite::None => "none",
            DivergenceSite::Register(_) => "register",
            DivergenceSite::Xmm(_) => "xmm",
            DivergenceSite::Memory(_) => "memory",
            DivergenceSite::Fu => "fu",
            DivergenceSite::EndRegister(_) => "end-register",
            DivergenceSite::EndXmm(_) => "end-xmm",
            DivergenceSite::EndMemory(_) => "end-memory",
        }
    }

    /// Human detail: the register name or byte address.
    pub fn detail(self) -> String {
        match self {
            DivergenceSite::None | DivergenceSite::Fu => String::new(),
            DivergenceSite::Register(g) | DivergenceSite::EndRegister(g) => g.to_string(),
            DivergenceSite::Xmm(x) | DivergenceSite::EndXmm(x) => x.to_string(),
            DivergenceSite::Memory(a) | DivergenceSite::EndMemory(a) => format!("{a:#x}"),
        }
    }

    /// The earliest planned corruption of a transient plan: the flip
    /// with the smallest dynamic index, falling back to end-of-run
    /// corruption when the plan has no in-run flips.
    pub fn of_plan(plan: &CorruptionPlan) -> DivergenceSite {
        let mut best: Option<(u64, DivergenceSite)> = None;
        let mut consider = |dyn_idx: u64, site: DivergenceSite| {
            if best.is_none_or(|(d, _)| dyn_idx < d) {
                best = Some((dyn_idx, site));
            }
        };
        for f in &plan.reg_flips {
            consider(f.dyn_idx, DivergenceSite::Register(f.arch));
        }
        for f in &plan.xmm_flips {
            consider(f.dyn_idx, DivergenceSite::Xmm(f.arch));
        }
        for f in &plan.load_flips {
            consider(f.dyn_idx, DivergenceSite::Memory(f.addr));
        }
        if let Some((_, site)) = best {
            return site;
        }
        if let Some((reg, _)) = plan.end_reg_corruption {
            DivergenceSite::EndRegister(reg)
        } else if let Some((reg, _)) = plan.end_xmm_corruption {
            DivergenceSite::EndXmm(reg)
        } else if let Some((addr, _)) = plan.end_corruption {
            DivergenceSite::EndMemory(addr)
        } else {
            DivergenceSite::None
        }
    }
}

/// The forensic record of one injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultAutopsy {
    /// Fault index within the campaign's sample (stable across thread
    /// counts — the sampler is seeded).
    pub fault: u64,
    /// Campaign worker that graded the fault (`fault % threads`): the
    /// per-worker timeline row in the trace export.
    pub worker: u64,
    /// Target structure label.
    pub structure: &'static str,
    /// Bit position within the structure: register bit (IRF/XRF), bit
    /// within the cache line (L1D), or gate index (functional units).
    pub bit: u32,
    /// Cycle at which the fault was injected (transients) or first
    /// activated (gate faults; 0 when never activated or unscreened).
    pub injected_cycle: u64,
    /// Dynamic instruction at which the corruption first became
    /// architecturally visible (0 when it never did).
    pub injected_dyn: u64,
    /// Graded outcome.
    pub outcome: FaultOutcome,
    /// Masking mechanism or detector.
    pub mechanism: Mechanism,
    /// First architectural divergence.
    pub site: DivergenceSite,
    /// Dynamic instructions from the first corruption to detection,
    /// reconvergence, or program end — the propagation span.
    pub propagation_insts: u64,
    /// Dynamic instructions from the first corruption to detection; 0
    /// for undetected faults.
    pub detection_latency: u64,
    /// Stable cross-run identity (`structure/fingerprint/site/model`,
    /// see `harpo_telemetry::FaultKey`), stamped by the campaign once
    /// the sampled fault site is known; empty until then.
    pub key: String,
}

impl FaultAutopsy {
    fn base(structure: &'static str, bit: u32) -> FaultAutopsy {
        FaultAutopsy {
            fault: 0,
            worker: 0,
            structure,
            bit,
            injected_cycle: 0,
            injected_dyn: 0,
            outcome: FaultOutcome::Masked,
            mechanism: Mechanism::Overwrite,
            site: DivergenceSite::None,
            propagation_insts: 0,
            detection_latency: 0,
            key: String::new(),
        }
    }

    /// A transient resolved Masked on the fast path: the planner proved
    /// no consumer ever observes the flipped bit.
    pub fn transient_fast_path(structure: &'static str, bit: u32, cycle: u64) -> FaultAutopsy {
        FaultAutopsy {
            injected_cycle: cycle,
            ..FaultAutopsy::base(structure, bit)
        }
    }

    /// A transient corrected by a protection scheme before any consumer
    /// observed it (SECDED L1D): the plan says where the first read
    /// *would* have landed.
    pub fn corrected(
        structure: &'static str,
        bit: u32,
        cycle: u64,
        plan: &CorruptionPlan,
    ) -> FaultAutopsy {
        FaultAutopsy {
            injected_cycle: cycle,
            outcome: FaultOutcome::Corrected,
            mechanism: Mechanism::Corrected,
            site: DivergenceSite::of_plan(plan),
            injected_dyn: in_run_dyn(plan.first_flip_dyn(), 0),
            ..FaultAutopsy::base(structure, bit)
        }
    }

    /// A replayed transient, graded from its plan and replay statistics.
    pub fn transient(
        structure: &'static str,
        bit: u32,
        cycle: u64,
        plan: &CorruptionPlan,
        outcome: FaultOutcome,
        stats: &ReplayStats,
    ) -> FaultAutopsy {
        let injected_dyn = in_run_dyn(plan.first_flip_dyn(), stats.end_dyn);
        FaultAutopsy {
            injected_cycle: cycle,
            injected_dyn,
            site: DivergenceSite::of_plan(plan),
            ..FaultAutopsy::replayed(structure, bit, injected_dyn, outcome, stats)
        }
    }

    /// A gate fault proven inactive by the packed screen: the stuck-at
    /// never changed the unit's output (pure logical masking).
    pub fn gate_screened(structure: &'static str, gate: u32) -> FaultAutopsy {
        FaultAutopsy {
            mechanism: Mechanism::Logical,
            ..FaultAutopsy::base(structure, gate)
        }
    }

    /// An activated gate fault proven Masked by the bit-parallel outcome
    /// cohort: the corrupted result never reaches live architectural
    /// state, so the scalar replay is skipped. `activation` is the first
    /// activating pass `(dyn, cycle)`.
    pub fn gate_demoted(
        structure: &'static str,
        gate: u32,
        activation: (u64, u64),
    ) -> FaultAutopsy {
        FaultAutopsy {
            injected_dyn: activation.0,
            injected_cycle: activation.1,
            mechanism: Mechanism::Logical,
            site: DivergenceSite::Fu,
            ..FaultAutopsy::base(structure, gate)
        }
    }

    /// A replayed gate fault. `activation` is the first activating pass
    /// `(dyn, cycle)` when the span screen ran.
    pub fn gate(
        structure: &'static str,
        gate: u32,
        activation: Option<(u64, u64)>,
        outcome: FaultOutcome,
        stats: &ReplayStats,
    ) -> FaultAutopsy {
        let (injected_dyn, injected_cycle) = activation.unwrap_or((0, 0));
        FaultAutopsy {
            injected_cycle,
            site: DivergenceSite::Fu,
            ..FaultAutopsy::replayed(structure, gate, injected_dyn, outcome, stats)
        }
    }

    fn replayed(
        structure: &'static str,
        bit: u32,
        injected_dyn: u64,
        outcome: FaultOutcome,
        stats: &ReplayStats,
    ) -> FaultAutopsy {
        let span = stats.end_dyn.saturating_sub(injected_dyn);
        FaultAutopsy {
            injected_dyn,
            outcome,
            mechanism: Mechanism::of_replay(outcome, stats.early_exit),
            propagation_insts: span,
            detection_latency: if outcome.detected() { span } else { 0 },
            ..FaultAutopsy::base(structure, bit)
        }
    }

    /// Renders as an `autopsy` journal record (introduced in schema
    /// v3; the cross-run `key` field was added in v5).
    pub fn to_record(&self) -> Record {
        Record::new("autopsy")
            .field("fault", self.fault)
            .field("worker", self.worker)
            .field("structure", self.structure)
            .field("bit", self.bit as u64)
            .field("outcome", self.outcome.label())
            .field("mechanism", self.mechanism.label())
            .field("site", self.site.label())
            .field("site_detail", self.site.detail())
            .field("injected_cycle", self.injected_cycle)
            .field("injected_dyn", self.injected_dyn)
            .field("propagation_insts", self.propagation_insts)
            .field("detection_latency", self.detection_latency)
            .field("key", self.key.clone())
    }
}

/// The corruption's first in-run consumption, or `fallback` when the
/// plan carries only end-of-run corruption (`first_flip_dyn` =
/// `u64::MAX`: the run itself is golden and diverges at the checker).
fn in_run_dyn(first_flip: u64, fallback: u64) -> u64 {
    if first_flip == u64::MAX {
        fallback
    } else {
        first_flip
    }
}

/// Per-bit outcome histogram of one structure, with an optional
/// ACE-residency overlay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StructureHeatmap {
    /// Structure label.
    pub structure: String,
    /// Per-bit SDC counts.
    pub sdc: Vec<u64>,
    /// Per-bit crash counts.
    pub crash: Vec<u64>,
    /// Per-bit masked counts.
    pub masked: Vec<u64>,
    /// Per-bit corrected counts.
    pub corrected: Vec<u64>,
    /// Per-bit ACE residency (bit-cycles) from `harpo-coverage`; empty
    /// when the overlay does not apply (functional units) or was not
    /// computed.
    pub ace: Vec<u64>,
}

impl StructureHeatmap {
    /// An empty heatmap over `bits` positions.
    pub fn new(structure: &str, bits: usize) -> StructureHeatmap {
        StructureHeatmap {
            structure: structure.to_string(),
            sdc: vec![0; bits],
            crash: vec![0; bits],
            masked: vec![0; bits],
            corrected: vec![0; bits],
            ace: Vec::new(),
        }
    }

    /// Number of bit positions tracked.
    pub fn bits(&self) -> usize {
        self.sdc.len()
    }

    /// Tallies one fault outcome at `bit`, growing the histogram if the
    /// position is beyond the current width.
    pub fn record(&mut self, bit: usize, outcome: FaultOutcome) {
        if bit >= self.bits() {
            for v in [
                &mut self.sdc,
                &mut self.crash,
                &mut self.masked,
                &mut self.corrected,
            ] {
                v.resize(bit + 1, 0);
            }
        }
        match outcome {
            FaultOutcome::Sdc => self.sdc[bit] += 1,
            FaultOutcome::Crash => self.crash[bit] += 1,
            FaultOutcome::Masked => self.masked[bit] += 1,
            FaultOutcome::Corrected => self.corrected[bit] += 1,
        }
    }

    /// Attaches the per-bit ACE residency overlay, truncating or
    /// zero-padding it to the histogram width.
    pub fn set_ace(&mut self, mut overlay: Vec<u64>) {
        overlay.resize(self.bits(), 0);
        self.ace = overlay;
    }

    /// Faults observed at `bit` across all outcomes.
    pub fn observed(&self, bit: usize) -> u64 {
        self.sdc[bit] + self.crash[bit] + self.masked[bit] + self.corrected[bit]
    }

    /// Faults detected at `bit` (SDC + crash).
    pub fn detected(&self, bit: usize) -> u64 {
        self.sdc[bit] + self.crash[bit]
    }

    /// Bits that were faulted but never detected, most-faulted first
    /// (ties by bit index) — the structure's blind spots.
    pub fn never_detected(&self) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = (0..self.bits())
            .filter(|&b| self.observed(b) > 0 && self.detected(b) == 0)
            .map(|b| (b, self.observed(b)))
            .collect();
        out.sort_by_key(|&(b, n)| (std::cmp::Reverse(n), b));
        out
    }

    /// Renders as the columnar heatmap JSON object.
    pub fn to_value(&self) -> Value {
        let col = |v: &[u64]| Value::Arr(v.iter().map(|&n| Value::U64(n)).collect());
        Value::Obj(vec![
            ("structure".to_string(), Value::from(self.structure.clone())),
            ("bits".to_string(), Value::from(self.bits())),
            ("sdc".to_string(), col(&self.sdc)),
            ("crash".to_string(), col(&self.crash)),
            ("masked".to_string(), col(&self.masked)),
            ("corrected".to_string(), col(&self.corrected)),
            ("ace".to_string(), col(&self.ace)),
        ])
    }

    /// Parses the columnar heatmap JSON object back (the round-trip
    /// `harpo report` uses when a journal carries `heatmap` records).
    ///
    /// # Errors
    /// A description of the missing or malformed field.
    pub fn from_value(v: &Value) -> Result<StructureHeatmap, String> {
        let structure = v
            .get("structure")
            .and_then(Value::as_str)
            .ok_or("heatmap without structure")?
            .to_string();
        let col = |key: &str| -> Result<Vec<u64>, String> {
            v.get(key)
                .and_then(Value::as_arr)
                .ok_or(format!("heatmap without {key}"))?
                .iter()
                .map(|x| x.as_u64().ok_or(format!("non-integer in {key}")))
                .collect()
        };
        let map = StructureHeatmap {
            structure,
            sdc: col("sdc")?,
            crash: col("crash")?,
            masked: col("masked")?,
            corrected: col("corrected")?,
            ace: col("ace")?,
        };
        if map.crash.len() != map.bits()
            || map.masked.len() != map.bits()
            || map.corrected.len() != map.bits()
        {
            return Err("heatmap columns disagree on width".to_string());
        }
        Ok(map)
    }

    /// Renders as a schema-v3 `heatmap` journal record.
    pub fn to_record(&self) -> Record {
        let Value::Obj(fields) = self.to_value() else {
            unreachable!("to_value renders an object");
        };
        let mut r = Record::new("heatmap");
        for (k, v) in fields {
            // Keys are the fixed column names; leak-free static strs.
            let key: &'static str = match k.as_str() {
                "structure" => "structure",
                "bits" => "bits",
                "sdc" => "sdc",
                "crash" => "crash",
                "masked" => "masked",
                "corrected" => "corrected",
                _ => "ace",
            };
            r = r.field(key, v);
        }
        r
    }
}

/// Aggregates autopsies into one heatmap per structure, in order of
/// first appearance.
pub fn heatmaps_of(autopsies: &[FaultAutopsy]) -> Vec<StructureHeatmap> {
    let mut maps: Vec<StructureHeatmap> = Vec::new();
    for a in autopsies {
        let map = match maps.iter_mut().find(|m| m.structure == a.structure) {
            Some(m) => m,
            None => {
                maps.push(StructureHeatmap::new(a.structure, 0));
                maps.last_mut().expect("just pushed")
            }
        };
        map.record(a.bit as usize, a.outcome);
    }
    maps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CorruptKind, LoadFlip, RegFlip};

    fn plan_with_reg_and_load() -> CorruptionPlan {
        CorruptionPlan {
            reg_flips: vec![RegFlip {
                dyn_idx: 9,
                arch: Gpr::Rax,
                bit: 3,
                kind: CorruptKind::Flip,
            }],
            load_flips: vec![LoadFlip {
                dyn_idx: 4,
                addr: 0x1_0000,
                bit: 1,
            }],
            ..CorruptionPlan::default()
        }
    }

    #[test]
    fn site_picks_earliest_flip() {
        let plan = plan_with_reg_and_load();
        assert_eq!(
            DivergenceSite::of_plan(&plan),
            DivergenceSite::Memory(0x1_0000)
        );
        assert_eq!(DivergenceSite::of_plan(&plan).label(), "memory");
        assert_eq!(DivergenceSite::of_plan(&plan).detail(), "0x10000");
    }

    #[test]
    fn site_falls_back_to_end_corruption() {
        let plan = CorruptionPlan {
            end_reg_corruption: Some((Gpr::Rbx, 5)),
            ..CorruptionPlan::default()
        };
        let site = DivergenceSite::of_plan(&plan);
        assert_eq!(site, DivergenceSite::EndRegister(Gpr::Rbx));
        assert_eq!(site.label(), "end-register");
        assert_eq!(
            DivergenceSite::of_plan(&CorruptionPlan::default()),
            DivergenceSite::None
        );
    }

    #[test]
    fn replayed_transient_mechanisms() {
        let plan = plan_with_reg_and_load();
        let stats = ReplayStats {
            executed_insts: 90,
            end_dyn: 100,
            ..ReplayStats::default()
        };
        let a = FaultAutopsy::transient("IRF", 3, 17, &plan, FaultOutcome::Sdc, &stats);
        assert_eq!(a.mechanism, Mechanism::Signature);
        assert_eq!(a.injected_dyn, 4);
        assert_eq!(a.propagation_insts, 96);
        assert_eq!(a.detection_latency, 96);

        let early = ReplayStats {
            early_exit: true,
            end_dyn: 40,
            ..ReplayStats::default()
        };
        let a = FaultAutopsy::transient("IRF", 3, 17, &plan, FaultOutcome::Masked, &early);
        assert_eq!(a.mechanism, Mechanism::Reconverged);
        assert_eq!(a.propagation_insts, 36);
        assert_eq!(a.detection_latency, 0, "undetected ⇒ no latency");

        let a = FaultAutopsy::transient("IRF", 3, 17, &plan, FaultOutcome::Masked, &stats);
        assert_eq!(a.mechanism, Mechanism::Logical);
    }

    #[test]
    fn end_corruption_only_plan_diverges_at_the_checker() {
        let plan = CorruptionPlan {
            end_corruption: Some((0x2_0000, 7)),
            ..CorruptionPlan::default()
        };
        let stats = ReplayStats {
            end_dyn: 500,
            ..ReplayStats::default()
        };
        let a = FaultAutopsy::transient("L1D", 63, 9, &plan, FaultOutcome::Sdc, &stats);
        assert_eq!(a.injected_dyn, 500, "divergence at end of run");
        assert_eq!(a.propagation_insts, 0);
        assert_eq!(a.site, DivergenceSite::EndMemory(0x2_0000));
    }

    #[test]
    fn autopsy_record_shape() {
        let a = FaultAutopsy::gate_screened("Integer Adder", 117);
        let r = a.to_record();
        assert_eq!(r.kind, "autopsy");
        assert_eq!(r.get("mechanism").unwrap().as_str(), Some("logical"));
        assert_eq!(r.get("outcome").unwrap().as_str(), Some("masked"));
        assert_eq!(r.get("bit").unwrap().as_u64(), Some(117));
        // The JSONL line parses back with the schema version stamped.
        let v = harpo_telemetry::json::parse(&r.to_json()).unwrap();
        assert_eq!(
            v.get("v").unwrap().as_u64(),
            Some(harpo_telemetry::SCHEMA_VERSION)
        );
    }

    #[test]
    fn heatmap_tallies_and_round_trips() {
        let mut m = StructureHeatmap::new("IRF", 4);
        m.record(0, FaultOutcome::Sdc);
        m.record(0, FaultOutcome::Masked);
        m.record(2, FaultOutcome::Masked);
        m.record(2, FaultOutcome::Masked);
        m.record(7, FaultOutcome::Crash); // grows to 8 bits
        assert_eq!(m.bits(), 8);
        m.set_ace(vec![5; 8]);
        assert_eq!(m.observed(0), 2);
        assert_eq!(m.detected(2), 0);
        // Bit 2 is the blind spot: faulted twice, never detected.
        assert_eq!(m.never_detected(), vec![(2, 2)]);

        let v = m.to_value();
        let back = StructureHeatmap::from_value(&v).unwrap();
        assert_eq!(back, m);
        // And through actual JSON text, as `harpo report` will read it.
        let parsed = harpo_telemetry::json::parse(&v.to_json()).unwrap();
        assert_eq!(StructureHeatmap::from_value(&parsed).unwrap(), m);
    }

    #[test]
    fn heatmaps_group_by_structure() {
        let mut a = FaultAutopsy::transient_fast_path("IRF", 3, 0);
        a.outcome = FaultOutcome::Masked;
        let b = FaultAutopsy::gate_screened("Integer Adder", 9);
        let mut c = FaultAutopsy::transient_fast_path("IRF", 3, 0);
        c.outcome = FaultOutcome::Sdc;
        let maps = heatmaps_of(&[a, b, c]);
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].structure, "IRF");
        assert_eq!(maps[0].sdc[3], 1);
        assert_eq!(maps[0].masked[3], 1);
        assert_eq!(maps[1].structure, "Integer Adder");
        assert_eq!(maps[1].masked[9], 1);
    }
}
