//! The "Ripple" use case (paper §IV-B): fast periodic in-production
//! fleet scanning. Harpocrates is constrained to *short* programs —
//! here a 400-instruction test per structure — maximising detection
//! under a strict runtime budget, so the scan steals almost no fleet
//! downtime.
//!
//! ```sh
//! cargo run --release --example ripple_scan
//! ```

use harpocrates::core::{Evaluator, Harpocrates, LoopConfig};
use harpocrates::coverage::TargetStructure;
use harpocrates::faultsim::{measure_detection, CampaignConfig};
use harpocrates::museqgen::{GenConstraints, Generator};
use harpocrates::uarch::OooCore;

fn main() {
    println!("Ripple mode: duration-constrained scan tests\n");
    let core = OooCore::default();
    let ccfg = CampaignConfig {
        n_faults: 64,
        ..CampaignConfig::default()
    };

    let mut suite = Vec::new();
    for structure in [
        TargetStructure::IntAdder,
        TargetStructure::IntMultiplier,
        TargetStructure::FpAdder,
        TargetStructure::FpMultiplier,
    ] {
        // The duration constraint: tiny programs, small fast loop.
        let constraints = GenConstraints {
            n_insts: 400,
            ..GenConstraints::default()
        };
        let loop_cfg = LoopConfig {
            population: 12,
            top_k: 4,
            iterations: 25,
            sample_every: 25,
            seed: 0x41991E,
            threads: 0,
        };
        let h = Harpocrates::new(
            Generator::new(constraints),
            Evaluator::new(core.clone(), structure),
            loop_cfg,
        );
        let report = h.run();
        let sim = core
            .simulate(&report.champion, 1_000_000)
            .expect("champion runs");
        let det =
            measure_detection(&report.champion, structure, &core, &ccfg).expect("campaign runs");
        println!(
            "{:<22} {:>6} cycles  detection {:>6.1}%",
            structure.label(),
            sim.trace.stats.cycles,
            det.detection() * 100.0
        );
        suite.push(report.champion);
    }

    let total: usize = suite.iter().map(|p| p.len()).sum();
    println!(
        "\nscan suite: {} programs, {} instructions total — small enough to run between jobs",
        suite.len(),
        total
    );
}
