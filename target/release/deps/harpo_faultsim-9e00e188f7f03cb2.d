/root/repo/target/release/deps/harpo_faultsim-9e00e188f7f03cb2.d: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

/root/repo/target/release/deps/libharpo_faultsim-9e00e188f7f03cb2.rlib: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

/root/repo/target/release/deps/libharpo_faultsim-9e00e188f7f03cb2.rmeta: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

crates/faultsim/src/lib.rs:
crates/faultsim/src/autopsy.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/checkpoint.rs:
crates/faultsim/src/fault.rs:
crates/faultsim/src/gate.rs:
crates/faultsim/src/outcome.rs:
crates/faultsim/src/plan.rs:
crates/faultsim/src/replay.rs:
crates/faultsim/src/stream.rs:
