/root/repo/target/debug/deps/harpo_faultsim-0e5960b24bf6ce3e.d: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/cohort.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

/root/repo/target/debug/deps/harpo_faultsim-0e5960b24bf6ce3e: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/cohort.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

crates/faultsim/src/lib.rs:
crates/faultsim/src/autopsy.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/checkpoint.rs:
crates/faultsim/src/cohort.rs:
crates/faultsim/src/fault.rs:
crates/faultsim/src/gate.rs:
crates/faultsim/src/outcome.rs:
crates/faultsim/src/plan.rs:
crates/faultsim/src/replay.rs:
crates/faultsim/src/stream.rs:
