/root/repo/target/debug/deps/autopsy_forensics-324e4f520f589bd0.d: crates/cli/tests/autopsy_forensics.rs Cargo.toml

/root/repo/target/debug/deps/libautopsy_forensics-324e4f520f589bd0.rmeta: crates/cli/tests/autopsy_forensics.rs Cargo.toml

crates/cli/tests/autopsy_forensics.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/cli
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
