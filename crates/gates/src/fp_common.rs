//! Shared sub-circuits for the floating-point units: field extraction,
//! special-value detection and result packing. Both FP circuits implement
//! the HX86 FP specification of `harpo_isa::softfp` *bit-for-bit* (the
//! cross-equivalence is enforced by tests in each unit module).

use crate::components::{eq_const, is_zero, mux_bus, or_tree};
use crate::netlist::{NetlistBuilder, WireId};

/// Decoded fields and classification of one FP operand.
#[derive(Debug, Clone)]
pub struct FpFields {
    /// Sign bit.
    pub sign: WireId,
    /// Exponent bus (8 bits).
    pub exp: Vec<WireId>,
    /// Mantissa bus (23 bits).
    pub man: Vec<WireId>,
    /// 24-bit significand with hidden bit (only meaningful for normals).
    pub sig: Vec<WireId>,
    /// `exp == 0` — zero under flush-to-zero (denormals included).
    pub is_zero: WireId,
    /// `exp == 255 && man != 0`.
    pub is_nan: WireId,
    /// `exp == 255 && man == 0`.
    pub is_inf: WireId,
}

/// Splits a 32-bit operand bus into classified FP fields.
pub fn decode_fp(b: &mut NetlistBuilder, bus: &[WireId]) -> FpFields {
    assert_eq!(bus.len(), 32);
    let sign = bus[31];
    let exp: Vec<WireId> = bus[23..31].to_vec();
    let man: Vec<WireId> = bus[..23].to_vec();
    let mut sig = man.clone();
    sig.push(WireId::ONE);
    let zero = is_zero(b, &exp);
    let ones = eq_const(b, &exp, 0xFF);
    let man_any = or_tree(b, &man);
    let man_none = b.not(man_any);
    let is_nan = b.and(ones, man_any);
    let is_inf = b.and(ones, man_none);
    FpFields {
        sign,
        exp,
        man,
        sig,
        is_zero: zero,
        is_nan,
        is_inf,
    }
}

/// Packs `(sign, exp8, man23)` into a 32-bit bus.
pub fn pack_fp(sign: WireId, exp: &[WireId], man: &[WireId]) -> Vec<WireId> {
    assert_eq!(exp.len(), 8);
    assert_eq!(man.len(), 23);
    let mut out = man.to_vec();
    out.extend_from_slice(exp);
    out.push(sign);
    out
}

/// The canonical quiet-NaN bus.
pub fn qnan_bus() -> Vec<WireId> {
    crate::components::const_bus(harpo_isa::softfp::QNAN as u64, 32)
}

/// An infinity bus with the given sign wire.
pub fn inf_bus(sign: WireId) -> Vec<WireId> {
    let mut out = crate::components::const_bus(0x7F80_0000, 32);
    out[31] = sign;
    out
}

/// A signed-zero bus.
pub fn zero_bus(sign: WireId) -> Vec<WireId> {
    let mut out = crate::components::const_bus(0, 32);
    out[31] = sign;
    out
}

/// `cond ? then : else` over 32-bit result buses — the priority-mux
/// building block for special-case handling.
pub fn select(
    b: &mut NetlistBuilder,
    cond: WireId,
    then_bus: &[WireId],
    else_bus: &[WireId],
) -> Vec<WireId> {
    mux_bus(b, cond, then_bus, else_bus)
}
