//! Fig. 6 — IBR coverage and permanent-gate-fault detection of the
//! baselines for the **SSE FP adder** and **SSE FP multiplier**.
//!
//! Expected shape (paper §III-C): most workloads barely exercise the FP
//! units — only 4 MiBench kernels and about half of OpenDCDiag show
//! non-zero detection; OpenDCDiag's FP-heavy tests (MxM, SVD) lead.

use harpo_bench::{
    baseline_suites, print_structure_table, write_csv, Cli, Harness, GRADE_CSV_HEADER,
};
use harpo_coverage::TargetStructure;
use harpo_uarch::OooCore;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("fig06_fpfu", &cli);
    let core = OooCore::default();
    let ccfg = cli.campaign();
    let suites = baseline_suites(cli.scale);

    let mut csv = Vec::new();
    for structure in [TargetStructure::FpAdder, TargetStructure::FpMultiplier] {
        let mut rows = Vec::new();
        for (fw, progs) in &suites {
            rows.extend(harness.grade_suite(fw, progs, structure, &core, &ccfg));
        }
        csv.extend(print_structure_table(structure, &rows));

        let mib_nonzero = rows
            .iter()
            .filter(|g| g.framework == "MiBench" && g.detection > 0.0)
            .count();
        println!("  MiBench programs with non-zero detection: {mib_nonzero}/12 (paper: 4)");
    }
    write_csv(&cli.out_dir, "fig06_fpfu.csv", GRADE_CSV_HEADER, &csv);
    harness.finish();
}
