//! Fig. 4 — coverage (ACE) and detection (transient SFI) of the three
//! baseline frameworks for the **IRF** and **L1D** bit-array structures.
//!
//! Expected shape (paper §III-C): IRF detection below ~5% for nearly all
//! programs; L1D detection much higher (up to ~80% for one OpenDCDiag
//! test); coverage always upper-bounds detection for bit arrays.

use harpo_bench::{
    baseline_suites, print_structure_table, write_csv, Cli, Harness, GRADE_CSV_HEADER,
};
use harpo_coverage::TargetStructure;
use harpo_uarch::OooCore;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("fig04_arrays", &cli);
    let core = OooCore::default();
    let ccfg = cli.campaign();
    let suites = baseline_suites(cli.scale);

    let mut csv = Vec::new();
    for structure in [TargetStructure::Irf, TargetStructure::L1d] {
        let mut rows = Vec::new();
        for (fw, progs) in &suites {
            rows.extend(harness.grade_suite(fw, progs, structure, &core, &ccfg));
        }
        csv.extend(print_structure_table(structure, &rows));

        // The ACE-bounds-detection property of §III-C.
        let violations = rows
            .iter()
            .filter(|g| g.detection > g.coverage + 0.12)
            .count();
        println!(
            "  ACE upper-bound check: {}/{} programs within bound",
            rows.len() - violations,
            rows.len()
        );
    }
    write_csv(&cli.out_dir, "fig04_arrays.csv", GRADE_CSV_HEADER, &csv);
    harness.finish();
}
