//! Fig. 10 — Harpocrates convergence for all six structures: coverage of
//! the top-K programs per sampled iteration, plus the champion's SFI
//! detection at each sample.
//!
//! The paper's key claim is visible in the output: **increasing the
//! coverage of the population translates into increasing detection
//! capability** (§VI-B, final observation).

use harpo_bench::{pct, write_csv, Cli, Harness};
use harpo_core::{presets, Evaluator, Harpocrates};
use harpo_coverage::TargetStructure;
use harpo_faultsim::measure_detection;
use harpo_museqgen::Generator;
use harpo_uarch::OooCore;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("fig10_convergence", &cli);
    let core = OooCore::default();
    let ccfg = cli.campaign();

    let mut csv = Vec::new();
    for structure in TargetStructure::ALL {
        println!("\n=== Fig. 10 panel: {} ===", structure.label());
        let (constraints, mut loop_cfg) = presets::preset(structure, cli.scale);
        loop_cfg.threads = cli.threads;
        let h = Harpocrates::new(
            Generator::new(constraints),
            Evaluator::new(core.clone(), structure),
            loop_cfg,
        )
        .with_metrics(harness.metrics().clone());
        let report = h.run();

        println!(
            "{:>9} {:>10} {:>10} {:>11}",
            "iteration", "best cov", "k-th cov", "detection"
        );
        let mut pairs = Vec::new();
        for s in &report.samples {
            let det = measure_detection(&s.champion, structure, &core, &ccfg)
                .map(|r| {
                    r.publish(harness.metrics());
                    r.detection()
                })
                .unwrap_or(0.0);
            let best = s.top_coverages[0];
            let kth = *s.top_coverages.last().unwrap();
            println!(
                "{:>9} {:>10} {:>10} {:>11}",
                s.iteration,
                pct(best),
                pct(kth),
                pct(det)
            );
            csv.push(format!(
                "{},{},{:.6},{:.6},{:.6}",
                structure.label(),
                s.iteration,
                best,
                kth,
                det
            ));
            pairs.push((best, det));
        }

        // Coverage→detection correlation over the samples (Pearson).
        let corr = pearson(&pairs);
        println!(
            "  coverage↔detection correlation over samples: {:.3} (paper: strongly positive)",
            corr
        );
        println!(
            "  loop timing: {:?} total, {:.0} inst/s",
            report.timing.total,
            report.timing.instructions_per_second()
        );
    }
    write_csv(
        &cli.out_dir,
        "fig10_convergence.csv",
        "structure,iteration,best_coverage,kth_coverage,champion_detection",
        &csv,
    );
    harness.finish();
}

fn pearson(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in pairs {
        num += (x - mx) * (y - my);
        dx += (x - mx).powi(2);
        dy += (y - my).powi(2);
    }
    if dx == 0.0 || dy == 0.0 {
        0.0
    } else {
        num / (dx * dy).sqrt()
    }
}
