//! Instruction semantics: the architectural behaviour of every HX86 form.
//!
//! All arithmetic routed through the four *graded* functional units
//! (integer adder, integer multiplier, FP adder, FP multiplier) goes
//! through the machine's [`crate::fu::FuProvider`], and every unit pass is
//! recorded in the step's [`crate::exec::PassList`] — this is what makes
//! the IBR coverage metric and gate-level fault injection possible.
//!
//! Notable fidelity points (see DESIGN.md for the full list):
//! * `SUB`-family instructions present `a + !b + carry-in` to the adder,
//!   exactly as a real two's-complement ALU does, so subtraction
//!   sensitises the same carry chain as addition;
//! * `MUL`/`DIV` write their implicit `RAX`/`RDX` destinations;
//! * `RCL`/`RCR` rotate through the carry flag over `width + 1` bits with
//!   the count reduced modulo `width + 1` — the corner case (count ==
//!   width) that crashed gem5 v22 (paper §VI-D) is handled and covered by
//!   a differential regression test.

use crate::exec::{BranchOut, ExecHooks};
use crate::exec::{Flow, Machine, MemAccess, Trap};
use crate::flags::Flags;
use crate::form::{Catalog, Form, FuKind, Mnemonic, OpMode};
use crate::fu::{FuPass, FuProvider};
use crate::inst::Inst;
use crate::mem::DATA_BASE;
use crate::reg::{Gpr, Width, Xmm};
use crate::softfp;

const FSIGN: u32 = 0x8000_0000;

impl<F: FuProvider, H: ExecHooks> Machine<'_, F, H> {
    pub(crate) fn exec_inst(&mut self, inst: Inst) -> Result<Flow, Trap> {
        use Mnemonic::*;
        let form = *Catalog::get().form(inst.form);
        let w = form.width;
        match form.mnemonic {
            Mov => self.exec_mov(inst, &form),
            Movzx | Movsx => self.exec_movx(inst, &form),
            Xchg => {
                let (ra, rb) = (inst.gpr_a(), inst.gpr_b());
                let va = self.read_gpr_w(w, ra);
                let vb = self.read_gpr_w(w, rb);
                self.write_gpr(w, ra, vb);
                self.write_gpr(w, rb, va);
                Ok(Flow::Next)
            }
            Lea => {
                let addr = self.effective_addr(inst, &form);
                self.write_gpr(w, inst.gpr_a(), w.trunc(addr));
                Ok(Flow::Next)
            }
            Push => {
                let v = if form.mode == OpMode::I {
                    inst.imm as i64 as u64
                } else {
                    self.read_gpr64(inst.gpr_a())
                };
                let rsp = self.read_gpr64(Gpr::Rsp).wrapping_sub(8);
                self.store(rsp, 8, v)?;
                self.write_gpr(Width::B64, Gpr::Rsp, rsp);
                Ok(Flow::Next)
            }
            Pop => {
                let rsp = self.read_gpr64(Gpr::Rsp);
                let v = self.load(rsp, 8)?;
                self.write_gpr(Width::B64, inst.gpr_a(), v);
                self.write_gpr(Width::B64, Gpr::Rsp, rsp.wrapping_add(8));
                Ok(Flow::Next)
            }
            Add | Adc | Sub | Sbb | Cmp => self.exec_addsub(inst, &form),
            Inc | Dec | Neg => self.exec_unary_adder(inst, &form),
            And | Or | Xor | Test => self.exec_logic(inst, &form),
            Not => {
                let r = inst.gpr_a();
                let v = self.read_gpr_w(w, r);
                self.write_gpr(w, r, !v & w.mask());
                Ok(Flow::Next)
            }
            Bswap => {
                let r = inst.gpr_a();
                let v = self.read_gpr64(r);
                let out = match w {
                    Width::B32 => (v as u32).swap_bytes() as u64,
                    _ => v.swap_bytes(),
                };
                self.write_gpr(w, r, out);
                Ok(Flow::Next)
            }
            Popcnt | Lzcnt | Tzcnt => self.exec_bitcount(inst, &form),
            Bt | Bts | Btr | Btc => self.exec_bittest(inst, &form),
            Shl | Shr | Sar | Rol | Ror | Rcl | Rcr => self.exec_shift(inst, &form),
            Imul2 => self.exec_imul2(inst, &form),
            ImulRax | MulRax => self.exec_mul_rax(inst, &form),
            IdivRax | DivRax => self.exec_div_rax(inst, &form),
            Cmovz | Cmovnz | Cmovs | Cmovns | Cmovc | Cmovnc => self.exec_cmov(inst, &form),
            Setz | Setnz | Sets | Setc => {
                self.info.reads_flags = true;
                let f = self.state.flags;
                let v = match form.mnemonic {
                    Setz => f.zf,
                    Setnz => !f.zf,
                    Sets => f.sf,
                    _ => f.cf,
                } as u64;
                self.write_gpr(Width::B8, inst.gpr_a(), v);
                Ok(Flow::Next)
            }
            Jmp | Jz | Jnz | Js | Jns | Jc | Jnc | Jo | Jno => self.exec_branch(inst, &form),
            Nop => Ok(Flow::Next),
            Halt => Ok(Flow::Halt),
            Rdtsc => {
                // Architecturally a timestamp; deterministic inside the
                // simulator but flagged non-deterministic in the catalogue
                // so generators and fuzz filters exclude it.
                let t = self.dyn_count.wrapping_mul(3).wrapping_add(7);
                self.write_gpr(Width::B64, Gpr::Rax, t & 0xFFFF_FFFF);
                self.write_gpr(Width::B64, Gpr::Rdx, t >> 32);
                Ok(Flow::Next)
            }
            Cpuid => {
                self.write_gpr(Width::B64, Gpr::Rax, 0x4858_3836); // "HX86"
                self.write_gpr(Width::B64, Gpr::Rbx, 0x6861_7270);
                self.write_gpr(Width::B64, Gpr::Rcx, 0x6F63_7261);
                self.write_gpr(Width::B64, Gpr::Rdx, 0x7465_7321);
                Ok(Flow::Next)
            }
            Movss | Movaps | MovqRx | MovqXr => self.exec_sse_mov(inst, &form),
            Addss | Subss | Mulss | Divss | Minss | Maxss | Sqrtss => {
                self.exec_sse_scalar(inst, &form)
            }
            Addps | Subps | Mulps | Divps | Minps | Maxps => self.exec_sse_packed(inst, &form),
            Andps | Orps | Xorps | Pxor => self.exec_sse_logic(inst, &form),
            Ucomiss => {
                let a = self.read_xmm_bits(inst.xmm_a(), 32)[0] as u32;
                let b = self.read_xmm_bits(inst.xmm_b(), 32)[0] as u32;
                let mut fl = Flags::default();
                match softfp::fcmp(a, b) {
                    softfp::FpCmp::Unordered => {
                        fl.zf = true;
                        fl.cf = true;
                    }
                    softfp::FpCmp::Lt => fl.cf = true,
                    softfp::FpCmp::Eq => fl.zf = true,
                    softfp::FpCmp::Gt => {}
                }
                self.set_flags(fl);
                Ok(Flow::Next)
            }
            Cvtsi2ss => {
                let v = self.read_gpr_masked(inst.gpr_b(), w.mask());
                let bits = match w {
                    Width::B32 => softfp::from_i32(v as i32),
                    _ => softfp::from_i64(v as i64),
                };
                let x = inst.xmm_a();
                self.info.reads_xmm |= 1 << x.index();
                self.info.writes_xmm |= 1 << x.index();
                self.state.set_xmm_scalar(x, bits);
                Ok(Flow::Next)
            }
            Cvttss2si => {
                let a = self.read_xmm_bits(inst.xmm_b(), 32)[0] as u32;
                let v = match w {
                    Width::B32 => softfp::to_i32(a) as u32 as u64,
                    _ => softfp::to_i64(a) as u64,
                };
                self.write_gpr(w, inst.gpr_a(), v);
                Ok(Flow::Next)
            }
            Paddq | Psubq => self.exec_sse_intadd(inst, &form),
            Paddd | Psubd => self.exec_sse_intadd_dword(inst, &form),
            Pmuludq => self.exec_pmuludq(inst),
        }
    }

    // ---- operand plumbing ----

    /// Observation mask a multiplication grants its operand: a flip at
    /// bit k of `a` changes `a*b` by ±`b`·2^k, which is visible in the
    /// kept low `w` bits only when k + trailing_zeros(b) < w. A zero
    /// other-operand observes nothing — the attractor that lets
    /// mul-chains silently absorb corruption.
    #[inline]
    fn mul_obs(w: Width, other: u64) -> u64 {
        if other == 0 {
            0
        } else {
            w.mask() >> other.trailing_zeros().min(63)
        }
    }

    /// Reads a GPR at width, observing all `w` bits.
    #[inline]
    fn read_gpr_w(&mut self, w: Width, r: Gpr) -> u64 {
        w.trunc(self.read_gpr_masked(r, w.mask()))
    }

    /// Reads a GPR at width with an explicit observation mask.
    #[inline]
    fn read_gpr_wm(&mut self, w: Width, r: Gpr, mask: u64) -> u64 {
        w.trunc(self.read_gpr_masked(r, mask & w.mask()))
    }

    fn effective_addr(&mut self, inst: Inst, form: &Form) -> u64 {
        match form.mode {
            OpMode::RmRip | OpMode::MrRip => DATA_BASE + (inst.imm as u16 as u64),
            _ => self
                .read_gpr64(inst.mem_base())
                .wrapping_add(inst.disp() as i64 as u64),
        }
    }

    /// Fetches the integer source operand for Rr/Ri/Rm modes, truncated;
    /// register sources observe all `w` bits.
    fn int_src(&mut self, inst: Inst, form: &Form) -> Result<u64, Trap> {
        self.int_src_masked(inst, form, u64::MAX)
    }

    /// As [`Self::int_src`] with an explicit observation mask for the
    /// register-source case (callers refine data-dependent masks with
    /// [`crate::exec::Machine::note_gpr_obs`] afterwards).
    fn int_src_masked(&mut self, inst: Inst, form: &Form, mask: u64) -> Result<u64, Trap> {
        let w = form.width;
        Ok(match form.mode {
            OpMode::Rr => self.read_gpr_wm(w, inst.gpr_b(), mask),
            OpMode::Ri => w.trunc(inst.imm as i64 as u64),
            OpMode::Rm | OpMode::RmRip => {
                let addr = self.effective_addr(inst, form);
                self.load(addr, w.bytes() as u8)?
            }
            m => unreachable!("int_src on mode {:?}", m),
        })
    }

    fn set_flags(&mut self, f: Flags) {
        self.info.writes_flags = true;
        self.state.flags = f;
    }

    fn set_zsf(&mut self, w: Width, r: u64, cf: bool, of: bool) {
        self.set_flags(Flags {
            cf,
            zf: r == 0,
            sf: r & w.sign_bit() != 0,
            of,
        });
    }

    // ---- integer adder family ----

    /// Routes `a op b` through the 64-bit adder unit; `sub` inverts `b` as
    /// hardware does. Returns (truncated result, carry-at-width, overflow).
    fn adder(&mut self, w: Width, a: u64, b: u64, sub: bool, cin: bool) -> (u64, bool, bool) {
        let b_eff = if sub { !b & w.mask() } else { b };
        let (sum, cout64) = self.fu.int_add(a, b_eff, cin);
        self.record_pass(FuPass {
            kind: FuKind::IntAdd,
            a,
            b: b_eff,
            cin,
        });
        let carry = if w == Width::B64 {
            cout64
        } else {
            sum >> w.bits() & 1 == 1
        };
        let r = w.trunc(sum);
        let sb = w.sign_bit();
        let of = if sub {
            (a ^ b) & (a ^ r) & sb != 0
        } else {
            (a ^ r) & (b ^ r) & sb != 0
        };
        (r, carry, of)
    }

    fn exec_addsub(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        use Mnemonic::*;
        let w = form.width;
        let dst = inst.gpr_a();
        // `SUB/SBB/CMP r, r` cancels any corruption (both operand reads
        // observe the same flipped value): zero observation.
        let self_cancel = form.mode == OpMode::Rr
            && inst.gpr_a() == inst.gpr_b()
            && matches!(form.mnemonic, Sub | Sbb | Cmp);
        let mask = if self_cancel { 0 } else { w.mask() };
        let a = w.trunc(self.read_gpr_masked(dst, mask));
        let b = self.int_src_masked(inst, form, mask)?;
        let (sub, use_cf) = match form.mnemonic {
            Add => (false, false),
            Adc => (false, true),
            Sub | Cmp => (true, false),
            Sbb => (true, true),
            _ => unreachable!(),
        };
        let cin = if use_cf {
            self.info.reads_flags = true;
            let c = self.state.flags.cf;
            if sub {
                !c
            } else {
                c
            }
        } else {
            sub // SUB/CMP: +1 for two's complement; ADD: +0
        };
        let (r, carry, of) = self.adder(w, a, b, sub, cin);
        let cf = if sub { !carry } else { carry };
        self.set_zsf(w, r, cf, of);
        if form.mnemonic != Cmp {
            self.write_gpr(w, dst, r);
        }
        Ok(Flow::Next)
    }

    fn exec_unary_adder(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        use Mnemonic::*;
        let w = form.width;
        let dst = inst.gpr_a();
        let a = self.read_gpr_w(w, dst);
        let keep_cf = self.state.flags.cf;
        let (r, carry, of) = match form.mnemonic {
            Inc => self.adder(w, a, 1, false, false),
            Dec => self.adder(w, a, 1, true, true),
            Neg => self.adder(w, 0, a, true, true),
            _ => unreachable!(),
        };
        let cf = match form.mnemonic {
            // INC/DEC preserve CF, as on x86.
            Inc | Dec => {
                self.info.reads_flags = true;
                keep_cf
            }
            Neg => a != 0,
            _ => !carry,
        };
        self.set_zsf(w, r, cf, of);
        self.write_gpr(w, dst, r);
        Ok(Flow::Next)
    }

    // ---- logic, bit ops, shifts ----

    fn exec_logic(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        use Mnemonic::*;
        let w = form.width;
        let dst = inst.gpr_a();
        // Read with no observation yet; exact masks depend on the other
        // operand's value and are noted below.
        let a = w.trunc(self.read_gpr_masked(dst, 0));
        let b = self.int_src_masked(inst, form, 0)?;
        let self_op = form.mode == OpMode::Rr && inst.gpr_a() == inst.gpr_b();
        let (r, obs_a, obs_b) = match form.mnemonic {
            // AND: a bit of one operand matters only where the other has 1.
            And | Test => (a & b, b, a),
            // OR: only where the other operand has 0.
            Or => (a | b, !b, !a),
            // XOR: every bit flips the result — except `xor r, r`, whose
            // identical corrupted operands cancel to zero.
            Xor if self_op => (0, 0, 0),
            Xor => (a ^ b, u64::MAX, u64::MAX),
            _ => unreachable!(),
        };
        self.note_gpr_obs(dst, obs_a & w.mask());
        if form.mode == OpMode::Rr {
            self.note_gpr_obs(inst.gpr_b(), obs_b & w.mask());
        }
        self.set_zsf(w, r, false, false);
        if form.mnemonic != Test {
            self.write_gpr(w, dst, r);
        }
        Ok(Flow::Next)
    }

    fn exec_bitcount(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        use Mnemonic::*;
        let w = form.width;
        let src = self.read_gpr_w(w, inst.gpr_b());
        let bits = w.bits();
        let r = match form.mnemonic {
            Popcnt => src.count_ones() as u64,
            Lzcnt => {
                if src == 0 {
                    bits as u64
                } else {
                    (src.leading_zeros() - (64 - bits)) as u64
                }
            }
            Tzcnt => {
                if src == 0 {
                    bits as u64
                } else {
                    src.trailing_zeros() as u64
                }
            }
            _ => unreachable!(),
        };
        self.set_zsf(w, r, src == 0, false);
        self.write_gpr(w, inst.gpr_a(), r);
        Ok(Flow::Next)
    }

    fn exec_bittest(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        use Mnemonic::*;
        let w = form.width;
        let dst = inst.gpr_a();
        let v = self.read_gpr_w(w, dst);
        let idx = match form.mode {
            OpMode::Rr => self.read_gpr64(inst.gpr_b()) as u32 & (w.bits() - 1),
            _ => inst.imm as u32 & (w.bits() - 1),
        };
        let bit = 1u64 << idx;
        let cf = v & bit != 0;
        let f = self.state.flags;
        self.set_flags(Flags { cf, ..f });
        let newv = match form.mnemonic {
            Bt => v,
            Bts => v | bit,
            Btr => v & !bit,
            Btc => v ^ bit,
            _ => unreachable!(),
        };
        if form.mnemonic != Bt {
            self.write_gpr(w, dst, newv);
        }
        Ok(Flow::Next)
    }

    fn exec_shift(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        use Mnemonic::*;
        let w = form.width;
        let bits = w.bits();
        let dst = inst.gpr_a();
        let a = w.trunc(self.read_gpr_masked(dst, 0));
        let raw_count = match form.mode {
            OpMode::Rc => self.read_gpr_masked(Gpr::Rcx, 0x3F) as u32,
            _ => inst.imm as u32,
        };
        // x86 masks the count to 5 (or 6) bits before anything else.
        let mut c = raw_count & if w == Width::B64 { 63 } else { 31 };
        if c == 0 {
            return Ok(Flow::Next); // value and flags untouched
        }
        // Refine the destination observation: bits shifted out of the
        // result (they only reach CF) are unobserved; rotates keep all.
        let obs = match form.mnemonic {
            Shl => w.mask() >> c.min(63),
            Shr | Sar => (w.mask() << c.min(63)) & w.mask() | w.sign_bit(),
            _ => w.mask(),
        };
        self.note_gpr_obs(dst, obs);
        let msb = |v: u64| v & w.sign_bit() != 0;
        let (r, cf, of);
        match form.mnemonic {
            Shl => {
                let ext = (a as u128) << c;
                r = w.trunc(ext as u64);
                cf = (ext >> bits) & 1 == 1;
                of = msb(r) ^ cf;
            }
            Shr => {
                r = if c >= 64 { 0 } else { a >> c };
                cf = c <= bits && (a >> (c - 1)) & 1 == 1;
                of = msb(a);
            }
            Sar => {
                let x = w.sext(a) as i64;
                r = w.trunc((x >> c.min(63)) as u64);
                cf = (x >> (c - 1).min(63)) & 1 == 1;
                of = false;
            }
            Rol => {
                c %= bits;
                r = if c == 0 {
                    a
                } else {
                    w.trunc(a << c | a >> (bits - c))
                };
                cf = r & 1 == 1;
                of = msb(r) ^ cf;
            }
            Ror => {
                c %= bits;
                r = if c == 0 {
                    a
                } else {
                    w.trunc(a >> c | a << (bits - c))
                };
                cf = msb(r);
                of = msb(r) ^ (r & w.sign_bit() >> 1 != 0);
            }
            Rcl | Rcr => {
                // Rotate through carry over `bits + 1` positions. The
                // count reduces mod (bits + 1); count == bits is legal and
                // is the corner case of paper §VI-D.
                self.info.reads_flags = true;
                c %= bits + 1;
                let cf_in = self.state.flags.cf as u128;
                let ext_bits = bits + 1;
                let ext = (cf_in << bits) | a as u128;
                let rot = if c == 0 {
                    ext
                } else if form.mnemonic == Rcl {
                    ((ext << c) | (ext >> (ext_bits - c))) & ((1u128 << ext_bits) - 1)
                } else {
                    ((ext >> c) | (ext << (ext_bits - c))) & ((1u128 << ext_bits) - 1)
                };
                r = w.trunc(rot as u64);
                cf = (rot >> bits) & 1 == 1;
                of = msb(r) ^ cf;
                let zf = self.state.flags.zf;
                let sf = self.state.flags.sf;
                // RCL/RCR only update CF and OF on x86.
                self.set_flags(Flags { cf, zf, sf, of });
                self.write_gpr(w, dst, r);
                return Ok(Flow::Next);
            }
            _ => unreachable!(),
        }
        self.set_zsf(w, r, cf, of);
        self.write_gpr(w, dst, r);
        Ok(Flow::Next)
    }

    // ---- multiply / divide ----

    fn exec_imul2(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let w = form.width;
        let dst = inst.gpr_a();
        let a = w.sext(w.trunc(self.read_gpr_masked(dst, 0))) as i64;
        let b = w.sext(self.int_src_masked(inst, form, 0)?) as i64;
        self.note_gpr_obs(dst, Self::mul_obs(w, b as u64));
        if form.mode == OpMode::Rr {
            self.note_gpr_obs(inst.gpr_b(), Self::mul_obs(w, a as u64));
        }
        let (lo, overflow) = self.signed_mul(w, a, b);
        self.set_zsf(w, lo, overflow, overflow);
        self.write_gpr(w, dst, lo);
        Ok(Flow::Next)
    }

    /// Signed multiply through the 32×32 array unit. Returns the low
    /// `width` bits and whether the full product overflowed them.
    fn signed_mul(&mut self, w: Width, a: i64, b: i64) -> (u64, bool) {
        if w == Width::B64 {
            let (lo, hi) = self.mul_wide_passes_signed(a, b);
            let fits = hi == (lo as i64) >> 63;
            (lo, !fits)
        } else {
            // Magnitudes fit in 32 bits: one pass through the array with a
            // native sign fix-up (Booth recoding equivalent).
            let p_mag = self.mul32_pass(a.unsigned_abs() as u32, b.unsigned_abs() as u32);
            let p = if (a < 0) ^ (b < 0) {
                (p_mag as i64).wrapping_neg()
            } else {
                p_mag as i64
            };
            let lo = w.trunc(p as u64);
            let fits = w.sext(lo) as i64 == p;
            (lo, !fits)
        }
    }

    fn mul32_pass(&mut self, a: u32, b: u32) -> u64 {
        let r = self.fu.int_mul32(a, b);
        self.record_pass(FuPass {
            kind: FuKind::IntMul,
            a: a as u64,
            b: b as u64,
            cin: false,
        });
        r
    }

    fn mul_wide_passes_unsigned(&mut self, a: u64, b: u64) -> (u64, u64) {
        let (al, ah) = (a as u32, (a >> 32) as u32);
        let (bl, bh) = (b as u32, (b >> 32) as u32);
        let ll = self.mul32_pass(al, bl);
        let lh = self.mul32_pass(al, bh);
        let hl = self.mul32_pass(ah, bl);
        let hh = self.mul32_pass(ah, bh);
        let mid = lh.wrapping_add(hl);
        let mid_carry = (mid < lh) as u64;
        let lo = ll.wrapping_add(mid << 32);
        let lo_carry = (lo < ll) as u64;
        let hi = hh
            .wrapping_add(mid >> 32)
            .wrapping_add(mid_carry << 32)
            .wrapping_add(lo_carry);
        (lo, hi)
    }

    fn mul_wide_passes_signed(&mut self, a: i64, b: i64) -> (u64, i64) {
        let (lo, hi_u) = self.mul_wide_passes_unsigned(a as u64, b as u64);
        let mut hi = hi_u as i64;
        if a < 0 {
            hi = hi.wrapping_sub(b);
        }
        if b < 0 {
            hi = hi.wrapping_sub(a);
        }
        (lo, hi)
    }

    fn exec_mul_rax(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let w = form.width;
        let signed = form.mnemonic == Mnemonic::ImulRax;
        let a = w.trunc(self.read_gpr_masked(Gpr::Rax, 0));
        let b = w.trunc(self.read_gpr_masked(inst.gpr_a(), 0));
        // Widening multiplies keep the full 2w-bit product, so any flip
        // is visible unless the other operand is zero.
        self.note_gpr_obs(Gpr::Rax, if b == 0 { 0 } else { w.mask() });
        self.note_gpr_obs(inst.gpr_a(), if a == 0 { 0 } else { w.mask() });
        let (lo, hi) = if w == Width::B64 {
            if signed {
                let (lo, hi) = self.mul_wide_passes_signed(a as i64, b as i64);
                (lo, hi as u64)
            } else {
                self.mul_wide_passes_unsigned(a, b)
            }
        } else {
            let bits = w.bits();
            let p = if signed {
                let sa = w.sext(a) as i64;
                let sb = w.sext(b) as i64;
                let mag = self.mul32_pass(sa.unsigned_abs() as u32, sb.unsigned_abs() as u32);
                if (sa < 0) ^ (sb < 0) {
                    (mag as i64).wrapping_neg() as u64
                } else {
                    mag
                }
            } else {
                self.mul32_pass(a as u32, b as u32)
            };
            (w.trunc(p), w.trunc(p >> bits))
        };
        // Result goes to (RDX:RAX) at width, as on x86 (the 8-bit variant
        // uses RDX's low byte in place of AH — documented deviation).
        self.write_gpr(w, Gpr::Rax, lo);
        self.write_gpr(w, Gpr::Rdx, hi);
        let spill = if signed {
            w.sext(hi) as i64 != (w.sext(lo) as i64) >> 63
        } else {
            hi != 0
        };
        self.set_zsf(w, lo, spill, spill);
        Ok(Flow::Next)
    }

    fn exec_div_rax(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let w = form.width;
        let signed = form.mnemonic == Mnemonic::IdivRax;
        let lo = self.read_gpr_w(w, Gpr::Rax);
        let hi = self.read_gpr_w(w, Gpr::Rdx);
        let src = self.read_gpr_w(w, inst.gpr_a());
        if src == 0 {
            return Err(Trap::DivideError);
        }
        let bits = w.bits();
        let (q, r) = if signed {
            let dividend = ((hi as u128) << bits | lo as u128) as i128;
            // Sign-extend the 2w-bit dividend.
            let dividend = (dividend << (128 - 2 * bits)) >> (128 - 2 * bits);
            let divisor = w.sext(src) as i64 as i128;
            let q = dividend / divisor;
            let r = dividend % divisor;
            let fits = q >= -(1i128 << (bits - 1)) && q < (1i128 << (bits - 1));
            if !fits {
                return Err(Trap::DivideError);
            }
            (q as u64, r as u64)
        } else {
            let dividend = (hi as u128) << bits | lo as u128;
            let divisor = src as u128;
            let q = dividend / divisor;
            if q >> bits != 0 {
                return Err(Trap::DivideError);
            }
            (q as u64, (dividend % divisor) as u64)
        };
        self.write_gpr(w, Gpr::Rax, w.trunc(q));
        self.write_gpr(w, Gpr::Rdx, w.trunc(r));
        Ok(Flow::Next)
    }

    // ---- moves, cmov, branches ----

    fn exec_mov(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let w = form.width;
        match form.mode {
            OpMode::Mr | OpMode::MrRip => {
                let v = self.read_gpr_w(w, inst.gpr_a());
                let addr = self.effective_addr(inst, form);
                self.store(addr, w.bytes() as u8, v)?;
            }
            _ => {
                let v = self.int_src(inst, form)?;
                self.write_gpr(w, inst.gpr_a(), v);
            }
        }
        Ok(Flow::Next)
    }

    fn exec_movx(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let srcw = form.width;
        let v = match form.mode {
            OpMode::Rr => self.read_gpr_wm(srcw, inst.gpr_b(), u64::MAX),
            _ => {
                let addr = self.effective_addr(inst, form);
                self.load(addr, srcw.bytes() as u8)?
            }
        };
        let out = if form.mnemonic == Mnemonic::Movsx {
            srcw.sext(v)
        } else {
            v
        };
        self.write_gpr(Width::B64, inst.gpr_a(), out);
        Ok(Flow::Next)
    }

    fn cond_holds(&mut self, m: Mnemonic) -> bool {
        use Mnemonic::*;
        self.info.reads_flags = true;
        let f = self.state.flags;
        match m {
            Jz | Cmovz => f.zf,
            Jnz | Cmovnz => !f.zf,
            Js | Cmovs => f.sf,
            Jns | Cmovns => !f.sf,
            Jc | Cmovc => f.cf,
            Jnc | Cmovnc => !f.cf,
            Jo => f.of,
            Jno => !f.of,
            Jmp => true,
            _ => unreachable!(),
        }
    }

    fn exec_cmov(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let take = self.cond_holds(form.mnemonic);
        let w = form.width;
        // A skipped CMOV reads the source architecturally but its value
        // cannot influence anything — observation mask 0.
        let mask = if take { w.mask() } else { 0 };
        let v = self.read_gpr_wm(w, inst.gpr_b(), mask);
        if take {
            self.write_gpr(w, inst.gpr_a(), v);
        }
        Ok(Flow::Next)
    }

    fn exec_branch(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let taken = self.cond_holds(form.mnemonic);
        let rip = self.state.rip as i64;
        let len = self.prog.insts.len() as i64;
        let target = if taken {
            rip + 1 + inst.rel() as i64
        } else {
            rip + 1
        };
        if target < 0 || target > len {
            return Err(Trap::WildBranch { target });
        }
        self.info.branch = Some(BranchOut {
            taken,
            target: target as u32,
            trivial: inst.rel() == 0,
        });
        if target == len {
            Ok(Flow::Halt)
        } else {
            Ok(Flow::Jump(target as u32))
        }
    }

    // ---- SSE ----

    fn read_xmm(&mut self, r: Xmm) -> [u64; 2] {
        self.read_xmm_bits(r, 128)
    }

    /// Reads an XMM register observing only the low `bits` bits (32 for
    /// scalar lanes, 64 for MOVQ, 128 for packed operations).
    fn read_xmm_bits(&mut self, r: Xmm, bits: u8) -> [u64; 2] {
        self.info.reads_xmm |= 1 << r.index();
        let slot = &mut self.info.xmm_read_mask[r.index()];
        match bits {
            32 => slot[0] |= 0xFFFF_FFFF,
            64 => slot[0] = u64::MAX,
            _ => *slot = [u64::MAX; 2],
        }
        let v = self.state.xmm(r);
        self.hooks.on_xmm_read(self.info.dyn_idx, r, v)
    }

    fn write_xmm(&mut self, r: Xmm, v: [u64; 2]) {
        self.info.writes_xmm |= 1 << r.index();
        self.state.set_xmm(r, v);
    }

    fn load128(&mut self, addr: u64) -> Result<[u64; 2], Trap> {
        if !addr.is_multiple_of(16) {
            return Err(Trap::UnalignedSse { addr });
        }
        let lo = self.mem.read(addr, 8)?;
        let hi = self.mem.read(addr + 8, 8)?;
        let lo = self.hooks.on_load(self.info.dyn_idx, addr, 8, lo);
        let hi = self.hooks.on_load(self.info.dyn_idx, addr + 8, 8, hi);
        self.info.mem = Some(MemAccess {
            addr,
            size: 16,
            is_store: false,
        });
        Ok([lo, hi])
    }

    fn store128(&mut self, addr: u64, v: [u64; 2]) -> Result<(), Trap> {
        if !addr.is_multiple_of(16) {
            return Err(Trap::UnalignedSse { addr });
        }
        self.hooks.on_store(self.info.dyn_idx, addr, 16);
        self.mem.write(addr, 8, v[0])?;
        self.mem.write(addr + 8, 8, v[1])?;
        self.info.mem = Some(MemAccess {
            addr,
            size: 16,
            is_store: true,
        });
        Ok(())
    }

    fn exec_sse_mov(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        use Mnemonic::*;
        match (form.mnemonic, form.mode) {
            (Movss, OpMode::Xx) => {
                let s = self.read_xmm_bits(inst.xmm_b(), 32)[0] as u32;
                let d = inst.xmm_a();
                self.info.reads_xmm |= 1 << d.index();
                self.info.writes_xmm |= 1 << d.index();
                self.state.set_xmm_scalar(d, s);
            }
            (Movss, OpMode::Xm) => {
                let addr = self.effective_addr(inst, form);
                let v = self.load(addr, 4)? as u32;
                // Load form zeroes the upper lanes, as on x86.
                self.write_xmm(inst.xmm_a(), [v as u64, 0]);
            }
            (Movss, OpMode::Mx) => {
                let v = self.read_xmm_bits(inst.xmm_a(), 32)[0] as u32;
                let addr = self.effective_addr(inst, form);
                self.store(addr, 4, v as u64)?;
            }
            (Movaps, OpMode::Xx) => {
                let v = self.read_xmm(inst.xmm_b());
                self.write_xmm(inst.xmm_a(), v);
            }
            (Movaps, OpMode::Xm) => {
                let addr = self.effective_addr(inst, form);
                let v = self.load128(addr)?;
                self.write_xmm(inst.xmm_a(), v);
            }
            (Movaps, OpMode::Mx) => {
                let v = self.read_xmm(inst.xmm_a());
                let addr = self.effective_addr(inst, form);
                self.store128(addr, v)?;
            }
            (MovqXr, _) => {
                let v = self.read_gpr64(inst.gpr_b());
                self.write_xmm(inst.xmm_a(), [v, 0]);
            }
            (MovqRx, _) => {
                let v = self.read_xmm_bits(inst.xmm_b(), 64)[0];
                self.write_gpr(Width::B64, inst.gpr_a(), v);
            }
            other => unreachable!("sse mov {:?}", other),
        }
        Ok(Flow::Next)
    }

    /// The scalar FP source operand (register lane 0 or a 4-byte load).
    fn fp_src_scalar(&mut self, inst: Inst, form: &Form) -> Result<u32, Trap> {
        Ok(match form.mode {
            OpMode::Xx => self.read_xmm_bits(inst.xmm_b(), 32)[0] as u32,
            OpMode::Xm => {
                let addr = self.effective_addr(inst, form);
                self.load(addr, 4)? as u32
            }
            m => unreachable!("fp scalar src mode {:?}", m),
        })
    }

    fn fp_add_pass(&mut self, a: u32, b: u32) -> u32 {
        let r = self.fu.fp_add(a, b);
        self.record_pass(FuPass {
            kind: FuKind::FpAdd,
            a: a as u64,
            b: b as u64,
            cin: false,
        });
        r
    }

    fn fp_mul_pass(&mut self, a: u32, b: u32) -> u32 {
        let r = self.fu.fp_mul(a, b);
        self.record_pass(FuPass {
            kind: FuKind::FpMul,
            a: a as u64,
            b: b as u64,
            cin: false,
        });
        r
    }

    fn fp_scalar_op(&mut self, m: Mnemonic, a: u32, b: u32) -> u32 {
        use Mnemonic::*;
        match m {
            Addss | Addps => self.fp_add_pass(a, b),
            // Subtraction flips the sign into the adder, as hardware does.
            Subss | Subps => self.fp_add_pass(a, b ^ FSIGN),
            Mulss | Mulps => self.fp_mul_pass(a, b),
            Divss | Divps => softfp::fdiv(a, b),
            Minss | Minps => softfp::fmin(a, b),
            Maxss | Maxps => softfp::fmax(a, b),
            Sqrtss => softfp::fsqrt(b),
            other => unreachable!("fp op {:?}", other),
        }
    }

    fn exec_sse_scalar(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let b = self.fp_src_scalar(inst, form)?;
        let d = inst.xmm_a();
        let a = self.read_xmm_bits(d, 32)[0] as u32;
        let r = self.fp_scalar_op(form.mnemonic, a, b);
        self.info.writes_xmm |= 1 << d.index();
        self.state.set_xmm_scalar(d, r);
        Ok(Flow::Next)
    }

    fn exec_sse_packed(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let src: [u64; 2] = match form.mode {
            OpMode::Xx => self.read_xmm(inst.xmm_b()),
            OpMode::Xm => {
                let addr = self.effective_addr(inst, form);
                self.load128(addr)?
            }
            m => unreachable!("packed mode {:?}", m),
        };
        let d = inst.xmm_a();
        let dst = self.read_xmm(d);
        let la = lanes(dst);
        let lb = lanes(src);
        let mut out = [0u32; 4];
        for i in 0..4 {
            out[i] = self.fp_scalar_op(form.mnemonic, la[i], lb[i]);
        }
        self.write_xmm(d, from_lanes(out));
        Ok(Flow::Next)
    }

    fn exec_sse_logic(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        use Mnemonic::*;
        let b = self.read_xmm(inst.xmm_b());
        let d = inst.xmm_a();
        let a = self.read_xmm(d);
        let r = match form.mnemonic {
            Andps => [a[0] & b[0], a[1] & b[1]],
            Orps => [a[0] | b[0], a[1] | b[1]],
            Xorps | Pxor => [a[0] ^ b[0], a[1] ^ b[1]],
            other => unreachable!("sse logic {:?}", other),
        };
        self.write_xmm(d, r);
        Ok(Flow::Next)
    }

    fn exec_sse_intadd(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let b = self.read_xmm(inst.xmm_b());
        let d = inst.xmm_a();
        let a = self.read_xmm(d);
        let sub = form.mnemonic == Mnemonic::Psubq;
        let mut out = [0u64; 2];
        for i in 0..2 {
            let b_eff = if sub { !b[i] } else { b[i] };
            let (s, _) = self.fu.int_add(a[i], b_eff, sub);
            self.record_pass(FuPass {
                kind: FuKind::IntAdd,
                a: a[i],
                b: b_eff,
                cin: sub,
            });
            out[i] = s;
        }
        self.write_xmm(d, out);
        Ok(Flow::Next)
    }
}

impl<F: FuProvider, H: ExecHooks> Machine<'_, F, H> {
    /// Packed dword add/sub: four 32-bit lanes, each a zero-extended pass
    /// through the 64-bit integer adder.
    fn exec_sse_intadd_dword(&mut self, inst: Inst, form: &Form) -> Result<Flow, Trap> {
        let b = self.read_xmm(inst.xmm_b());
        let d = inst.xmm_a();
        let a = self.read_xmm(d);
        let la = lanes(a);
        let lb = lanes(b);
        let sub = form.mnemonic == Mnemonic::Psubd;
        let mut out = [0u32; 4];
        for i in 0..4 {
            let x = la[i] as u64;
            let y_eff = if sub {
                !(lb[i] as u64) & 0xFFFF_FFFF
            } else {
                lb[i] as u64
            };
            let (sum, _) = self.fu.int_add(x, y_eff, sub);
            self.record_pass(FuPass {
                kind: FuKind::IntAdd,
                a: x,
                b: y_eff,
                cin: sub,
            });
            out[i] = sum as u32;
        }
        self.write_xmm(d, from_lanes(out));
        Ok(Flow::Next)
    }

    /// `PMULUDQ`: unsigned multiplies of dwords 0 and 2 into two qwords —
    /// two passes through the 32×32 multiplier array.
    fn exec_pmuludq(&mut self, inst: Inst) -> Result<Flow, Trap> {
        let b = self.read_xmm(inst.xmm_b());
        let d = inst.xmm_a();
        let a = self.read_xmm(d);
        let lo = self.mul32_pass(a[0] as u32, b[0] as u32);
        let hi = self.mul32_pass(a[1] as u32, b[1] as u32);
        self.write_xmm(d, [lo, hi]);
        Ok(Flow::Next)
    }
}

#[inline]
fn lanes(v: [u64; 2]) -> [u32; 4] {
    [
        v[0] as u32,
        (v[0] >> 32) as u32,
        v[1] as u32,
        (v[1] >> 32) as u32,
    ]
}

#[inline]
fn from_lanes(l: [u32; 4]) -> [u64; 2] {
    [
        l[0] as u64 | (l[1] as u64) << 32,
        l[2] as u64 | (l[3] as u64) << 32,
    ]
}

#[cfg(test)]
mod tests {
    use crate::exec::{Machine, Trap};
    use crate::form::{Catalog, FormId, Mnemonic, OpMode};
    use crate::fu::NativeFu;
    use crate::inst::Inst;
    use crate::mem::DATA_BASE;
    use crate::program::Program;
    use crate::reg::{Gpr, Width, Xmm};

    fn f(m: Mnemonic, mode: OpMode, w: Width) -> FormId {
        Catalog::get()
            .lookup(m, mode, w, false)
            .unwrap_or_else(|| panic!("missing form {:?} {:?} {:?}", m, mode, w))
    }

    fn fp(m: Mnemonic, mode: OpMode) -> FormId {
        Catalog::get().lookup(m, mode, Width::B32, false).unwrap()
    }

    fn run(insts: Vec<Inst>) -> crate::exec::RunOutput {
        let mut p = Program::new("t", insts);
        p.insts.push(Inst::halt());
        let mut m = Machine::new(&p, NativeFu);
        m.run(1_000_000).expect("clean run")
    }

    fn run_with(init: impl FnOnce(&mut Program), insts: Vec<Inst>) -> crate::exec::RunOutput {
        let mut p = Program::new("t", insts);
        p.insts.push(Inst::halt());
        init(&mut p);
        let mut m = Machine::new(&p, NativeFu);
        m.run(1_000_000).expect("clean run")
    }

    #[test]
    fn add_sets_flags_and_result() {
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 7),
            Inst::new(f(Mnemonic::Add, OpMode::Ri, Width::B64), 0, 0, -7),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax), 0);
        assert!(out.state.flags.zf);
        assert!(out.state.flags.cf, "7 + (-7) carries");
    }

    #[test]
    fn sub_borrow_semantics() {
        // 5 - 10 at 8 bits: result 0xFB, CF (borrow) set, SF set.
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 5),
            Inst::new(f(Mnemonic::Sub, OpMode::Ri, Width::B8), 0, 0, 10),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax), 0xFB);
        assert!(out.state.flags.cf);
        assert!(out.state.flags.sf);
        assert!(!out.state.flags.zf);
    }

    #[test]
    fn adc_chains_carry() {
        // 64-bit: u64::MAX + 1 carries into a second limb.
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, -1),
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 3, 0, 0),
            Inst::new(f(Mnemonic::Add, OpMode::Ri, Width::B64), 0, 0, 1),
            Inst::new(f(Mnemonic::Adc, OpMode::Ri, Width::B64), 3, 0, 0),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax), 0);
        assert_eq!(out.state.gpr(Gpr::Rbx), 1);
    }

    #[test]
    fn signed_overflow_flag() {
        // i8: 127 + 1 overflows.
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 127),
            Inst::new(f(Mnemonic::Add, OpMode::Ri, Width::B8), 0, 0, 1),
        ]);
        assert!(out.state.flags.of);
        assert!(out.state.flags.sf);
        assert!(!out.state.flags.cf);
    }

    #[test]
    fn inc_preserves_cf() {
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, -1),
            Inst::new(f(Mnemonic::Add, OpMode::Ri, Width::B64), 0, 0, 1), // sets CF
            Inst::new(f(Mnemonic::Inc, OpMode::R, Width::B64), 0, 0, 0),
        ]);
        assert!(out.state.flags.cf, "INC must not clobber CF");
        assert_eq!(out.state.gpr(Gpr::Rax), 1);
    }

    #[test]
    fn mul_rax_widening() {
        // 0xFFFF_FFFF^2 at 32 bits → EDX:EAX.
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, -1),
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 3, 0, -1),
            Inst::new(f(Mnemonic::MulRax, OpMode::R, Width::B32), 3, 0, 0),
        ]);
        let want = 0xFFFF_FFFFu64 * 0xFFFF_FFFF;
        assert_eq!(out.state.gpr(Gpr::Rax), want & 0xFFFF_FFFF);
        assert_eq!(out.state.gpr(Gpr::Rdx), want >> 32);
        assert!(out.state.flags.cf);
    }

    #[test]
    fn imul2_64bit() {
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, -3),
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 1, 0, 7),
            Inst::new(f(Mnemonic::Imul2, OpMode::Rr, Width::B64), 0, 1, 0),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax) as i64, -21);
        assert!(!out.state.flags.of);
    }

    #[test]
    fn div_by_zero_traps() {
        let insts = vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 1, 0, 0),
            Inst::new(f(Mnemonic::DivRax, OpMode::R, Width::B64), 1, 0, 0),
        ];
        let p = Program::new("div0", insts);
        let mut m = Machine::new(&p, NativeFu);
        assert_eq!(m.run(100).unwrap_err(), Trap::DivideError);
    }

    #[test]
    fn div_quotient() {
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 100),
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 2, 0, 0),
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 1, 0, 7),
            Inst::new(f(Mnemonic::DivRax, OpMode::R, Width::B64), 1, 0, 0),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax), 14);
        assert_eq!(out.state.gpr(Gpr::Rdx), 2);
    }

    #[test]
    fn div_overflow_traps() {
        // RDX:RAX = 2^64 : quotient of /1 does not fit 64 bits.
        let insts = vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 2, 0, 1),
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 1, 0, 1),
            Inst::new(f(Mnemonic::DivRax, OpMode::R, Width::B64), 1, 0, 0),
        ];
        let p = Program::new("divovf", insts);
        let mut m = Machine::new(&p, NativeFu);
        assert_eq!(m.run(100).unwrap_err(), Trap::DivideError);
    }

    #[test]
    fn rcr_full_width_rotate() {
        // The §VI-D corner: RCR by exactly the register width. Rotating
        // the 9-bit ring {CF, v} right by 8 equals rotating it left by 1:
        // v = 0xA5 with CF = 1 gives 0x4B with CF = 1 (verified against
        // x86's per-step RCR definition in the Intel SDM).
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 0xA5),
            // Set CF via ADD that carries at 8 bits: 0xFF + 1.
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 3, 0, 0xFF),
            Inst::new(f(Mnemonic::Add, OpMode::Ri, Width::B8), 3, 0, 1),
            Inst::new(f(Mnemonic::Rcr, OpMode::RiB, Width::B8), 0, 0, 8),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax), 0x4B);
        assert!(out.state.flags.cf, "old bit 0 lands in CF");
    }

    #[test]
    fn rcr_differs_from_naive_modulo_width() {
        // A buggy implementation reducing the count mod `width` (the gem5
        // bug analogue) would treat count==8 on 8-bit as a no-op. Verify we
        // do not.
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 0x42),
            Inst::new(f(Mnemonic::Rcr, OpMode::RiB, Width::B8), 0, 0, 8),
        ]);
        assert_ne!(out.state.gpr(Gpr::Rax), 0x42);
    }

    #[test]
    fn shifts_and_rotates() {
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 0b1001),
            Inst::new(f(Mnemonic::Shl, OpMode::RiB, Width::B64), 0, 0, 4),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax), 0b1001_0000);

        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 0x80),
            Inst::new(f(Mnemonic::Ror, OpMode::RiB, Width::B8), 0, 0, 4),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax), 0x08);

        // SAR keeps the sign.
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, -64),
            Inst::new(f(Mnemonic::Sar, OpMode::RiB, Width::B64), 0, 0, 3),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax) as i64, -8);
    }

    #[test]
    fn shift_by_cl_masks_count() {
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 1),
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 1, 0, 65), // CL = 65 → masked to 1
            Inst::new(f(Mnemonic::Shl, OpMode::Rc, Width::B64), 0, 0, 0),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax), 2);
    }

    #[test]
    fn loads_and_stores() {
        let out = run_with(
            |p| p.reg_init.gprs[6] = DATA_BASE, // RSI = data base
            vec![
                Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 0x1234_5678),
                Inst::new(f(Mnemonic::Mov, OpMode::Mr, Width::B32), 0, 6, 16),
                Inst::new(f(Mnemonic::Mov, OpMode::Rm, Width::B32), 3, 6, 16),
            ],
        );
        assert_eq!(out.state.gpr(Gpr::Rbx), 0x1234_5678);
    }

    #[test]
    fn rip_relative_addressing() {
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 99),
            Inst::new(f(Mnemonic::Mov, OpMode::MrRip, Width::B64), 0, 0, 0x100),
            Inst::new(f(Mnemonic::Mov, OpMode::RmRip, Width::B64), 5, 0, 0x100),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rbp), 99);
    }

    #[test]
    fn out_of_bounds_store_traps() {
        let insts = vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 6, 0, 0x10), // RSI = 0x10 (below base)
            Inst::new(f(Mnemonic::Mov, OpMode::Mr, Width::B64), 0, 6, 0),
        ];
        let p = Program::new("oob", insts);
        let mut m = Machine::new(&p, NativeFu);
        assert!(matches!(m.run(100).unwrap_err(), Trap::Mem(_)));
    }

    #[test]
    fn push_pop_roundtrip() {
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 0x5A5A),
            Inst::new(f(Mnemonic::Push, OpMode::R, Width::B64), 0, 0, 0),
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 0),
            Inst::new(f(Mnemonic::Pop, OpMode::R, Width::B64), 0, 0, 0),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rax), 0x5A5A);
    }

    #[test]
    fn stack_underflow_traps() {
        // Popping an empty stack reads above the region.
        let insts = vec![Inst::new(f(Mnemonic::Pop, OpMode::R, Width::B64), 0, 0, 0)];
        let p = Program::new("pop-empty", insts);
        let mut m = Machine::new(&p, NativeFu);
        assert!(matches!(m.run(100).unwrap_err(), Trap::Mem(_)));
    }

    #[test]
    fn conditional_branch_loop() {
        // Covered by the doc-test too; exercise the not-taken path here.
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 1),
            Inst::new(f(Mnemonic::Sub, OpMode::Ri, Width::B64), 0, 0, 1),
            Inst::new(f(Mnemonic::Jnz, OpMode::Rel, Width::B64), 0, 0, -2),
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 3, 0, 77),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rbx), 77);
    }

    #[test]
    fn wild_branch_traps() {
        let insts = vec![Inst::new(
            f(Mnemonic::Jmp, OpMode::Rel, Width::B64),
            0,
            0,
            1000,
        )];
        let p = Program::new("wild", insts);
        let mut m = Machine::new(&p, NativeFu);
        assert!(matches!(m.run(100).unwrap_err(), Trap::WildBranch { .. }));
    }

    #[test]
    fn cmov_takes_and_skips() {
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 1),
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 3, 0, 42),
            Inst::new(f(Mnemonic::Test, OpMode::Rr, Width::B64), 0, 0, 0), // ZF=0
            Inst::new(f(Mnemonic::Cmovz, OpMode::Rr, Width::B64), 5, 3, 0), // skipped
            Inst::new(f(Mnemonic::Cmovnz, OpMode::Rr, Width::B64), 6, 3, 0), // taken
        ]);
        assert_eq!(out.state.gpr(Gpr::Rbp), 0);
        assert_eq!(out.state.gpr(Gpr::Rsi), 42);
    }

    #[test]
    fn sse_scalar_add_mul() {
        let out = run_with(
            |p| {
                p.reg_init.xmms[1][0] = 3.0f32.to_bits() as u64;
                p.reg_init.xmms[2][0] = 4.0f32.to_bits() as u64;
            },
            vec![
                Inst::new(fp(Mnemonic::Addss, OpMode::Xx), 1, 2, 0),
                Inst::new(fp(Mnemonic::Mulss, OpMode::Xx), 1, 2, 0),
            ],
        );
        // (3 + 4) * 4 = 28.
        assert_eq!(out.state.xmm_scalar(Xmm::Xmm1), 28.0f32.to_bits());
    }

    #[test]
    fn sse_packed_lanes_independent() {
        let out = run_with(
            |p| {
                p.reg_init.xmms[0] = [
                    1.0f32.to_bits() as u64 | (2.0f32.to_bits() as u64) << 32,
                    3.0f32.to_bits() as u64 | (4.0f32.to_bits() as u64) << 32,
                ];
                p.reg_init.xmms[1] = [
                    10.0f32.to_bits() as u64 | (20.0f32.to_bits() as u64) << 32,
                    30.0f32.to_bits() as u64 | (40.0f32.to_bits() as u64) << 32,
                ];
            },
            vec![Inst::new(
                Catalog::get()
                    .lookup(Mnemonic::Addps, OpMode::Xx, Width::B32, true)
                    .unwrap(),
                0,
                1,
                0,
            )],
        );
        let lanes = out.state.xmm_lanes(Xmm::Xmm0);
        assert_eq!(lanes.map(f32::from_bits), [11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn movaps_alignment_enforced() {
        let insts = vec![Inst::new(
            Catalog::get()
                .lookup(Mnemonic::Movaps, OpMode::Xm, Width::B32, true)
                .unwrap(),
            0,
            6,
            8, // RSI(=0) + 8 → below DATA_BASE anyway, but alignment of the *address* is checked first
        )];
        let mut p = Program::new("movaps", insts);
        p.reg_init.gprs[6] = DATA_BASE + 4; // misaligned
        let mut m = Machine::new(&p, NativeFu);
        assert!(matches!(m.run(10).unwrap_err(), Trap::UnalignedSse { .. }));
    }

    #[test]
    fn ucomiss_flag_patterns() {
        let mk = |a: f32, b: f32| {
            run_with(
                |p| {
                    p.reg_init.xmms[0][0] = a.to_bits() as u64;
                    p.reg_init.xmms[1][0] = b.to_bits() as u64;
                },
                vec![Inst::new(fp(Mnemonic::Ucomiss, OpMode::Xx), 0, 1, 0)],
            )
            .state
            .flags
        };
        let lt = mk(1.0, 2.0);
        assert!(lt.cf && !lt.zf);
        let eq = mk(5.0, 5.0);
        assert!(eq.zf && !eq.cf);
        let gt = mk(3.0, 2.0);
        assert!(!gt.cf && !gt.zf);
        let un = mk(f32::NAN, 2.0);
        assert!(un.cf && un.zf);
    }

    #[test]
    fn cvt_roundtrip() {
        let out = run(vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, -37),
            Inst::new(
                Catalog::get()
                    .lookup(Mnemonic::Cvtsi2ss, OpMode::Xr, Width::B64, false)
                    .unwrap(),
                2,
                0,
                0,
            ),
            Inst::new(
                Catalog::get()
                    .lookup(Mnemonic::Cvttss2si, OpMode::Rx, Width::B64, false)
                    .unwrap(),
                5,
                2,
                0,
            ),
        ]);
        assert_eq!(out.state.gpr(Gpr::Rbp) as i64, -37);
    }

    #[test]
    fn paddq_adds_lanes() {
        let out = run_with(
            |p| {
                p.reg_init.xmms[0] = [100, 200];
                p.reg_init.xmms[1] = [1, 2];
            },
            vec![Inst::new(
                Catalog::get()
                    .lookup(Mnemonic::Paddq, OpMode::Xx, Width::B32, true)
                    .unwrap(),
                0,
                1,
                0,
            )],
        );
        assert_eq!(out.state.xmm(Xmm::Xmm0), [101, 202]);
    }

    #[test]
    fn determinism_same_signature() {
        // A mixed program run twice produces identical signatures.
        let insts = vec![
            Inst::new(f(Mnemonic::Mov, OpMode::Ri, Width::B64), 0, 0, 1234),
            Inst::new(f(Mnemonic::Imul2, OpMode::Rr, Width::B64), 0, 0, 0),
            Inst::new(f(Mnemonic::Push, OpMode::R, Width::B64), 0, 0, 0),
            Inst::new(f(Mnemonic::Pop, OpMode::R, Width::B64), 3, 0, 0),
            Inst::new(f(Mnemonic::Bswap, OpMode::R, Width::B64), 3, 0, 0),
        ];
        let p = Program::new("det", insts);
        let mut m1 = Machine::new(&p, NativeFu);
        let mut m2 = Machine::new(&p, NativeFu);
        let o1 = m1.run(1000).unwrap();
        let o2 = m2.run(1000).unwrap();
        assert_eq!(o1.signature, o2.signature);
    }

    #[test]
    fn fu_passes_recorded() {
        let mut p = Program::new(
            "passes",
            vec![
                Inst::new(f(Mnemonic::Add, OpMode::Ri, Width::B64), 0, 0, 5),
                Inst::new(f(Mnemonic::Imul2, OpMode::Rr, Width::B64), 0, 1, 0),
            ],
        );
        p.insts.push(Inst::halt());
        let mut m = Machine::new(&p, NativeFu);
        let s1 = *m.step().unwrap().unwrap();
        assert_eq!(s1.passes.len(), 1);
        assert_eq!(s1.passes.as_slice()[0].kind, crate::form::FuKind::IntAdd);
        let s2 = *m.step().unwrap().unwrap();
        assert_eq!(
            s2.passes.len(),
            4,
            "64-bit signed imul makes 4 array passes"
        );
        assert!(s2
            .passes
            .as_slice()
            .iter()
            .all(|p| p.kind == crate::form::FuKind::IntMul));
    }
}

#[cfg(test)]
mod sse2_tests {
    use crate::exec::Machine;
    use crate::form::{Catalog, FuKind, Mnemonic, OpMode};
    use crate::fu::NativeFu;
    use crate::inst::Inst;
    use crate::program::Program;
    use crate::reg::{Width, Xmm};

    fn xx(m: Mnemonic) -> Inst {
        let f = Catalog::get()
            .lookup(m, OpMode::Xx, Width::B32, true)
            .unwrap();
        Inst::new(f, 0, 1, 0)
    }

    fn run1(inst: Inst, a: [u64; 2], b: [u64; 2]) -> (crate::exec::RunOutput, usize) {
        let mut p = Program::new("sse2", vec![inst, Inst::halt()]);
        p.reg_init.xmms[0] = a;
        p.reg_init.xmms[1] = b;
        let mut m = Machine::new(&p, NativeFu);
        let s = m.step().unwrap().unwrap();
        let passes = s.passes.len();
        m.run(100).unwrap();
        (m.output(), passes)
    }

    #[test]
    fn paddd_four_lanes_wrap() {
        let a = [u32::MAX as u64 | (1u64 << 32), 2 | (3u64 << 32)];
        let b = [1u64 | (10u64 << 32), 20 | (30u64 << 32)];
        let (out, passes) = run1(xx(Mnemonic::Paddd), a, b);
        assert_eq!(passes, 4, "four adder passes");
        let r = out.state.xmm_lanes(Xmm::Xmm0);
        assert_eq!(r, [0, 11, 22, 33], "lane 0 wraps");
    }

    #[test]
    fn psubd_wraps() {
        let (out, _) = run1(xx(Mnemonic::Psubd), [0, 0], [1 | (2u64 << 32), 0]);
        let r = out.state.xmm_lanes(Xmm::Xmm0);
        assert_eq!(r[0], u32::MAX);
        assert_eq!(r[1], u32::MAX - 1);
    }

    #[test]
    fn pmuludq_multiplies_dwords_0_and_2() {
        let a = [0xFFFF_FFFFu64 | (99u64 << 32), 7];
        let b = [2u64 | (123u64 << 32), 3];
        let (out, passes) = run1(xx(Mnemonic::Pmuludq), a, b);
        assert_eq!(passes, 2, "two multiplier passes");
        assert_eq!(out.state.xmm(Xmm::Xmm0), [0xFFFF_FFFFu64 * 2, 21]);
        // The passes went through the graded multiplier.
        let mut p = Program::new("chk", vec![xx(Mnemonic::Pmuludq), Inst::halt()]);
        p.reg_init.xmms[0] = a;
        p.reg_init.xmms[1] = b;
        let mut m = Machine::new(&p, NativeFu);
        let s = m.step().unwrap().unwrap();
        assert!(s.passes.as_slice().iter().all(|x| x.kind == FuKind::IntMul));
    }
}
