//! Variable-length binary encoding of HX86 instructions.
//!
//! The encoding is x86-like in spirit: a one-byte primary opcode map with
//! escape bytes to secondary pages, a `modrm`-style register byte, then
//! mode-dependent immediate/displacement payloads (1–4 bytes). Roughly an
//! eighth of opcode-byte space is intentionally unassigned so that raw byte
//! fuzzing (the SiliFuzz baseline) encounters illegal instructions at a
//! realistic rate.
//!
//! Layout:
//!
//! ```text
//! [escape?] [opcode] [modrm] [payload...]
//!   0xE1+p    < 224    a<<4|b   per-mode
//! ```

use crate::form::{Catalog, FormId, OpMode};
use crate::inst::Inst;
use serde::{Deserialize, Serialize};
use std::fmt;

/// First escape byte; page `p > 0` is announced by the byte `0xE0 + p`.
const ESCAPE_BASE: u8 = 0xE0;

/// Errors produced when decoding HX86 machine code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeError {
    /// The opcode byte (possibly after an escape) maps to no form.
    IllegalOpcode {
        /// Byte offset of the offending opcode.
        at: usize,
    },
    /// The byte stream ended in the middle of an instruction.
    Truncated {
        /// Byte offset where more bytes were required.
        at: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::IllegalOpcode { at } => write!(f, "illegal opcode at byte {}", at),
            DecodeError::Truncated { at } => write!(f, "truncated instruction at byte {}", at),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Payload byte count (after the modrm byte) for an operand mode.
fn payload_len(mode: OpMode) -> usize {
    match mode {
        OpMode::Ri | OpMode::I => 4,
        OpMode::RiB => 1,
        OpMode::Rm
        | OpMode::Mr
        | OpMode::Xm
        | OpMode::Mx
        | OpMode::RmRip
        | OpMode::MrRip
        | OpMode::Rel => 2,
        OpMode::Rr
        | OpMode::R
        | OpMode::Rc
        | OpMode::None
        | OpMode::Xx
        | OpMode::Xr
        | OpMode::Rx => 0,
    }
}

/// Encodes one instruction, appending its bytes to `out`. Returns the
/// number of bytes written.
pub fn encode_inst(inst: &Inst, out: &mut Vec<u8>) -> usize {
    let cat = Catalog::get();
    let (page, opcode) = cat.position(inst.form);
    let start = out.len();
    if page > 0 {
        out.push(ESCAPE_BASE + page);
    }
    out.push(opcode);
    out.push((inst.a << 4) | (inst.b & 0xF));
    let mode = cat.form(inst.form).mode;
    match payload_len(mode) {
        0 => {}
        1 => out.push(inst.imm as u8),
        2 => out.extend_from_slice(&(inst.imm as i16).to_le_bytes()),
        4 => out.extend_from_slice(&inst.imm.to_le_bytes()),
        _ => unreachable!(),
    }
    out.len() - start
}

/// Decodes a single instruction from the front of `bytes`.
///
/// Returns the instruction and the number of bytes consumed.
///
/// # Errors
/// [`DecodeError::IllegalOpcode`] if the opcode is unassigned,
/// [`DecodeError::Truncated`] if `bytes` ends mid-instruction.
pub fn decode_inst(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    decode_at(bytes, 0)
}

fn decode_at(bytes: &[u8], base: usize) -> Result<(Inst, usize), DecodeError> {
    let cat = Catalog::get();
    let mut pos = 0usize;
    let next = |pos: &mut usize| -> Result<u8, DecodeError> {
        let b = *bytes
            .get(*pos)
            .ok_or(DecodeError::Truncated { at: base + *pos })?;
        *pos += 1;
        Ok(b)
    };

    let mut b0 = next(&mut pos)?;
    let mut page = 0u8;
    if b0 > ESCAPE_BASE && (b0 - ESCAPE_BASE) < cat.page_count() as u8 {
        page = b0 - ESCAPE_BASE;
        b0 = next(&mut pos)?;
    }
    let form: FormId = cat
        .on_page(page, b0)
        .ok_or(DecodeError::IllegalOpcode { at: base + pos - 1 })?;
    let modrm = next(&mut pos)?;
    let (a, b) = (modrm >> 4, modrm & 0xF);

    let mode = cat.form(form).mode;
    let imm = match payload_len(mode) {
        0 => 0,
        1 => next(&mut pos)? as i32,
        2 => {
            let lo = next(&mut pos)?;
            let hi = next(&mut pos)?;
            i16::from_le_bytes([lo, hi]) as i32
        }
        4 => {
            let mut w = [0u8; 4];
            for byte in &mut w {
                *byte = next(&mut pos)?;
            }
            i32::from_le_bytes(w)
        }
        _ => unreachable!(),
    };
    Ok((Inst::new(form, a, b, imm), pos))
}

/// Decodes an entire byte stream into instructions.
///
/// # Errors
/// Fails with the position of the first undecodable byte; this is the
/// filter the SiliFuzz-like baseline uses to discard non-runnable
/// snapshots.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<Inst>, DecodeError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let (inst, used) = decode_at(&bytes[pos..], pos)?;
        out.push(inst);
        pos += used;
    }
    Ok(out)
}

/// Encodes a whole instruction sequence ("compilation" in the paper's
/// Table I terminology).
pub fn encode_program(insts: &[Inst]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insts.len() * 4);
    for i in insts {
        encode_inst(i, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form::{Catalog, Mnemonic, OpMode};
    use crate::reg::Width;

    #[test]
    fn roundtrip_every_form() {
        let cat = Catalog::get();
        for form in cat.forms() {
            let inst = Inst::new(form.id, 5, 11, -7);
            let mut bytes = Vec::new();
            let n = encode_inst(&inst, &mut bytes);
            assert_eq!(n, bytes.len());
            let (back, used) = decode_inst(&bytes).unwrap_or_else(|e| {
                panic!("decode failed for {}: {}", form.name(), e);
            });
            assert_eq!(used, n);
            assert_eq!(back.form, inst.form);
            assert_eq!(back.a, inst.a);
            assert_eq!(back.b, inst.b);
            // Immediates narrower than 32 bits lose high bits by design.
            match payload_len(form.mode) {
                0 => {}
                1 => assert_eq!(back.imm as u8, inst.imm as u8),
                2 => assert_eq!(back.imm as i16, inst.imm as i16),
                4 => assert_eq!(back.imm, inst.imm),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn stream_roundtrip() {
        let cat = Catalog::get();
        let add = cat
            .lookup(Mnemonic::Add, OpMode::Rr, Width::B64, false)
            .unwrap();
        let mov = cat
            .lookup(Mnemonic::Mov, OpMode::Ri, Width::B32, false)
            .unwrap();
        let prog = vec![
            Inst::new(add, 0, 1, 0),
            Inst::new(mov, 2, 0, 0x1234_5678),
            Inst::halt(),
        ];
        let bytes = encode_program(&prog);
        let back = decode_stream(&bytes).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn illegal_opcode_detected() {
        // 0xDF is within page 0's fill range only if assigned; 224..=0xE0
        // region is never assigned.
        let err = decode_inst(&[0xE0, 0x00]).unwrap_err();
        assert!(matches!(err, DecodeError::IllegalOpcode { .. }));
    }

    #[test]
    fn truncation_detected() {
        let cat = Catalog::get();
        let mov = cat
            .lookup(Mnemonic::Mov, OpMode::Ri, Width::B64, false)
            .unwrap();
        let mut bytes = Vec::new();
        encode_inst(&Inst::new(mov, 1, 0, 42), &mut bytes);
        for cut in 1..bytes.len() {
            let err = decode_inst(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, DecodeError::Truncated { .. }), "cut={}", cut);
        }
    }

    #[test]
    fn random_bytes_are_often_illegal() {
        // Sanity check for the fuzz baseline: a meaningful fraction of the
        // opcode space must be unassigned.
        let mut illegal = 0;
        let mut total = 0;
        for b0 in 0..=255u8 {
            total += 1;
            if decode_inst(&[b0, 0, 0, 0, 0, 0]).is_err() {
                illegal += 1;
            }
        }
        assert!(
            illegal > 16,
            "only {}/{} illegal first bytes",
            illegal,
            total
        );
    }

    #[test]
    fn error_display() {
        let e = DecodeError::IllegalOpcode { at: 3 };
        assert_eq!(e.to_string(), "illegal opcode at byte 3");
        let t = DecodeError::Truncated { at: 9 };
        assert_eq!(t.to_string(), "truncated instruction at byte 9");
    }
}
