/root/repo/target/release/deps/ablation_mutation-0efdd6ac448553e2.d: crates/bench/src/bin/ablation_mutation.rs

/root/repo/target/release/deps/ablation_mutation-0efdd6ac448553e2: crates/bench/src/bin/ablation_mutation.rs

crates/bench/src/bin/ablation_mutation.rs:
