/root/repo/target/release/deps/harpo_baselines-d6eb8fc7c8b9235f.d: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/release/deps/libharpo_baselines-d6eb8fc7c8b9235f.rlib: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/release/deps/libharpo_baselines-d6eb8fc7c8b9235f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

crates/baselines/src/lib.rs:
crates/baselines/src/kern.rs:
crates/baselines/src/mibench.rs:
crates/baselines/src/opendcdiag.rs:
crates/baselines/src/silifuzz.rs:
