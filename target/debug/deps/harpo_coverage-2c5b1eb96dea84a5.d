/root/repo/target/debug/deps/harpo_coverage-2c5b1eb96dea84a5.d: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_coverage-2c5b1eb96dea84a5.rmeta: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs Cargo.toml

crates/coverage/src/lib.rs:
crates/coverage/src/ace.rs:
crates/coverage/src/ibr.rs:
crates/coverage/src/liveness.rs:
crates/coverage/src/objective.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
