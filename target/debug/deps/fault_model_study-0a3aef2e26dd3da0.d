/root/repo/target/debug/deps/fault_model_study-0a3aef2e26dd3da0.d: crates/bench/src/bin/fault_model_study.rs Cargo.toml

/root/repo/target/debug/deps/libfault_model_study-0a3aef2e26dd3da0.rmeta: crates/bench/src/bin/fault_model_study.rs Cargo.toml

crates/bench/src/bin/fault_model_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
