//! Cross-crate observability contract: the JSONL run journal emitted by
//! the refinement loop parses with the in-tree JSON parser, carries the
//! documented per-iteration and summary fields, and — critically — does
//! not perturb the search (attaching telemetry is strictly
//! observational).

use harpocrates::core::{Evaluator, Harpocrates, LoopConfig};
use harpocrates::coverage::TargetStructure;
use harpocrates::museqgen::{GenConstraints, Generator};
use harpocrates::telemetry::{json, JsonlSink, Metrics, Telemetry, Value};
use harpocrates::uarch::OooCore;
use std::sync::Arc;

const ITERS: usize = 6;

fn journal_loop(structure: TargetStructure) -> Harpocrates {
    Harpocrates::new(
        Generator::new(GenConstraints {
            n_insts: 300,
            ..GenConstraints::default()
        }),
        Evaluator::new(OooCore::default(), structure),
        LoopConfig {
            population: 8,
            top_k: 3,
            iterations: ITERS,
            sample_every: ITERS,
            seed: 0x70AD,
            threads: 0,
        },
    )
}

#[test]
fn jsonl_journal_round_trips_through_the_in_tree_parser() {
    let path = std::env::temp_dir().join(format!("harpo-journal-{}.jsonl", std::process::id()));
    let sink = JsonlSink::create(&path).expect("create journal");
    let report = journal_loop(TargetStructure::IntAdder)
        .with_telemetry(Telemetry::to(Arc::new(sink)))
        .run();

    let text = std::fs::read_to_string(&path).expect("read journal back");
    std::fs::remove_file(&path).ok();
    let records: Vec<Value> = text
        .lines()
        .map(|l| json::parse(l).expect("every journal line is valid JSON"))
        .collect();

    // One record per iteration (including the bootstrap generation 0)
    // plus the final summary.
    let iterations: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("kind").and_then(Value::as_str) == Some("iteration"))
        .collect();
    assert_eq!(iterations.len(), ITERS + 1, "journal: {text}");
    for (i, rec) in iterations.iter().enumerate() {
        assert_eq!(rec.get("iter").and_then(Value::as_u64), Some(i as u64));
        for key in ["evaluated", "new_survivors", "evaluation_ns"] {
            assert!(
                rec.get(key).and_then(Value::as_u64).is_some(),
                "missing {key}"
            );
        }
        for key in ["best", "mean", "champion", "kth"] {
            let v = rec
                .get(key)
                .and_then(Value::as_f64)
                .expect("coverage field");
            assert!((0.0..=1.0).contains(&v), "{key} out of range: {v}");
        }
        // Bootstrap pays generation, later iterations pay mutation.
        let gen_ns = rec.get("generation_ns").and_then(Value::as_u64).unwrap();
        let mut_ns = rec.get("mutation_ns").and_then(Value::as_u64).unwrap();
        if i == 0 {
            assert!(gen_ns > 0 && mut_ns == 0);
        } else {
            assert!(gen_ns == 0 && mut_ns > 0);
        }
    }

    let summary = records
        .iter()
        .find(|r| r.get("kind").and_then(Value::as_str) == Some("summary"))
        .expect("summary record");
    assert_eq!(
        summary.get("iterations").and_then(Value::as_u64),
        Some(ITERS as u64)
    );
    assert_eq!(
        summary.get("programs_evaluated").and_then(Value::as_u64),
        Some(report.timing.programs_evaluated)
    );
    assert_eq!(
        summary.get("champion_coverage").and_then(Value::as_f64),
        Some(report.champion_coverage)
    );
    assert!(summary.get("total_ns").and_then(Value::as_u64).unwrap() > 0);
    // The counter snapshot rode along and agrees with the run totals.
    let counters = summary.get("counters").expect("counter snapshot");
    assert_eq!(
        counters.get("evaluator.programs").and_then(Value::as_u64),
        summary.get("programs_evaluated").and_then(Value::as_u64)
    );
    assert!(
        counters
            .get("uarch.cycles")
            .and_then(Value::as_u64)
            .unwrap()
            > 0
    );
}

#[test]
fn canonical_journal_is_byte_identical_with_streaming_on_or_off() {
    use harpocrates::telemetry::canonical_journal;

    let structure = TargetStructure::IntAdder;
    let pid = std::process::id();
    let run = |suffix: &str, streaming: bool| {
        let path = std::env::temp_dir().join(format!("harpo-canon-{pid}-{suffix}.jsonl"));
        let sink = JsonlSink::create(&path).expect("create journal");
        let mut h = journal_loop(structure).with_telemetry(Telemetry::to(Arc::new(sink)));
        if streaming {
            h = h.with_streaming(1);
        }
        let report = h.run();
        let text = std::fs::read_to_string(&path).expect("read journal back");
        std::fs::remove_file(&path).ok();
        (report, text)
    };
    let (on_report, on_text) = run("on", true);
    let (off_report, off_text) = run("off", false);

    // The raw streaming journal really streams: v4 progress records
    // with wall-clock fields are interleaved with the iteration log.
    assert!(on_text.contains("\"kind\":\"progress\""));
    assert!(on_text.contains("\"kind\":\"heartbeat\""));
    assert!(on_text.contains("\"kind\":\"resource\""));
    assert!(!off_text.contains("\"kind\":\"progress\""));

    // The determinism guard: streaming records and wall-clock-bearing
    // fields are exactly the non-canonical part of the journal. After
    // filtering, the two journals must agree byte for byte.
    assert_eq!(canonical_journal(&on_text), canonical_journal(&off_text));

    // And the search itself is untouched.
    assert_eq!(on_report.champion_coverage, off_report.champion_coverage);
    assert_eq!(on_report.champion.encode(), off_report.champion.encode());
}

#[test]
fn journalling_is_invisible_to_the_search() {
    let structure = TargetStructure::IntMultiplier;
    let plain = journal_loop(structure).run();

    let path = std::env::temp_dir().join(format!("harpo-determinism-{}.jsonl", std::process::id()));
    let sink = JsonlSink::create(&path).expect("create journal");
    let journalled = journal_loop(structure)
        .with_telemetry(Telemetry::to(Arc::new(sink)))
        .with_metrics(Metrics::new())
        .run();
    std::fs::remove_file(&path).ok();

    // Bit-identical champion and coverage trajectory either way.
    assert_eq!(plain.champion_coverage, journalled.champion_coverage);
    assert_eq!(plain.champion.encode(), journalled.champion.encode());
    let traj = |r: &harpocrates::core::RunReport| {
        r.samples
            .iter()
            .map(|s| s.top_coverages.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(traj(&plain), traj(&journalled));
}
