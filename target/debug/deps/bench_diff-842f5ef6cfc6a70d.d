/root/repo/target/debug/deps/bench_diff-842f5ef6cfc6a70d.d: crates/bench/src/bin/bench_diff.rs Cargo.toml

/root/repo/target/debug/deps/libbench_diff-842f5ef6cfc6a70d.rmeta: crates/bench/src/bin/bench_diff.rs Cargo.toml

crates/bench/src/bin/bench_diff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
