/root/repo/target/release/deps/fig04_arrays-228e97ad75d77271.d: crates/bench/src/bin/fig04_arrays.rs

/root/repo/target/release/deps/fig04_arrays-228e97ad75d77271: crates/bench/src/bin/fig04_arrays.rs

crates/bench/src/bin/fig04_arrays.rs:
