//! End-to-end determinism guarantees for the refinement loop.
//!
//! The performance work (reusable simulation contexts, work-stealing
//! population evaluation, the evaluation memo cache) must not move a
//! single bit of the search outcome: same seed → same champion program,
//! same coverage, same sample trajectory. These tests pin that contract
//! at the engine level.
//!
//! The golden-value test additionally pins the *absolute* outcome of a
//! seeded run so that any future change to evaluation order, scoring or
//! caching that silently shifts results is caught — not just
//! run-to-run nondeterminism. Golden constants depend on the exact RNG
//! stream, so they are gated on an RNG fingerprint and the test degrades
//! to a run-twice determinism check when the stream differs.

use harpo_core::{Evaluator, Harpocrates, LoopConfig};
use harpo_coverage::TargetStructure;
use harpo_isa::mem::fnv1a;
use harpo_museqgen::{GenConstraints, Generator};
use harpo_uarch::{OooCore, SimContext};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn golden_harpocrates(structure: TargetStructure) -> Harpocrates {
    let gen = Generator::new(GenConstraints {
        n_insts: 200,
        ..GenConstraints::default()
    });
    let ev = Evaluator::new(OooCore::default(), structure);
    Harpocrates::new(
        gen,
        ev,
        LoopConfig {
            population: 8,
            top_k: 2,
            iterations: 5,
            sample_every: 5,
            seed: 0xD5EED,
            threads: 2,
        },
    )
}

/// The golden constants below were captured against this exact RNG
/// stream; a different `rand` backend yields a different (but equally
/// deterministic) trajectory.
fn rng_stream_matches_golden() -> bool {
    StdRng::seed_from_u64(0xA1C0).next_u64() == 0xd5fab77b605f0bb5
}

struct Golden {
    structure: TargetStructure,
    coverage_bits: u64,
    champ_hash: u64,
    top_bits: [u64; 2],
}

const GOLDENS: [Golden; 2] = [
    Golden {
        structure: TargetStructure::IntAdder,
        coverage_bits: 0x3fa86678dfb4f331,
        champ_hash: 0xb2b6e73c105f9391,
        top_bits: [0x3fa86678dfb4f331, 0x3fa7dece06db0426],
    },
    Golden {
        structure: TargetStructure::Irf,
        coverage_bits: 0x3fb5056cbd32398a,
        champ_hash: 0x4828171af0f8bc4f,
        top_bits: [0x3fb5056cbd32398a, 0x3fb4e9bcb564efe9],
    },
];

#[test]
fn seeded_runs_hit_golden_values() {
    for g in &GOLDENS {
        let r = golden_harpocrates(g.structure).run();
        assert_eq!(r.champion.len(), 201);
        if rng_stream_matches_golden() {
            assert_eq!(
                r.champion_coverage.to_bits(),
                g.coverage_bits,
                "{:?}: champion coverage moved (got bits {:#x} = {})",
                g.structure,
                r.champion_coverage.to_bits(),
                r.champion_coverage
            );
            assert_eq!(
                fnv1a(&r.champion.encode()),
                g.champ_hash,
                "{:?}: champion machine code changed",
                g.structure
            );
            let last = r.samples.last().unwrap();
            let bits: Vec<u64> = last.top_coverages.iter().map(|c| c.to_bits()).collect();
            assert_eq!(
                bits, g.top_bits,
                "{:?}: survivor trajectory moved",
                g.structure
            );
        } else {
            // Unknown RNG stream: fall back to exact run-to-run equality.
            let r2 = golden_harpocrates(g.structure).run();
            assert_eq!(
                r.champion_coverage.to_bits(),
                r2.champion_coverage.to_bits()
            );
            assert_eq!(r.champion.encode(), r2.champion.encode());
            assert_eq!(
                r.samples.last().unwrap().top_coverages,
                r2.samples.last().unwrap().top_coverages
            );
        }
    }
}

#[test]
fn thread_count_does_not_change_the_outcome() {
    // Work-stealing changes which worker grades which program, never the
    // program→score mapping or the selection order.
    let run_at = |threads: usize| {
        let gen = Generator::new(GenConstraints {
            n_insts: 150,
            ..GenConstraints::default()
        });
        let ev = Evaluator::new(OooCore::default(), TargetStructure::IntMultiplier);
        Harpocrates::new(
            gen,
            ev,
            LoopConfig {
                population: 9,
                top_k: 3,
                iterations: 4,
                sample_every: 2,
                seed: 77,
                threads,
            },
        )
        .run()
    };
    let one = run_at(1);
    for threads in [2, 4, 8] {
        let many = run_at(threads);
        assert_eq!(
            one.champion_coverage.to_bits(),
            many.champion_coverage.to_bits()
        );
        assert_eq!(one.champion.insts, many.champion.insts);
        assert_eq!(
            one.samples.last().unwrap().top_coverages,
            many.samples.last().unwrap().top_coverages
        );
    }
}

#[test]
fn simulate_into_matches_simulate_over_a_corpus() {
    // One long-lived context replaying a generated corpus must agree
    // with a fresh simulation of every program, field for field.
    let gen = Generator::new(GenConstraints {
        n_insts: 120,
        ..GenConstraints::default()
    });
    let core = OooCore::default();
    let mut ctx = SimContext::new();
    for seed in 0..24u64 {
        let prog = gen.generate(seed);
        let fresh = core.simulate(&prog, 1_000_000);
        let reused = core.simulate_into(&prog, 1_000_000, &mut ctx);
        match (fresh, reused) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.output.signature, b.output.signature, "seed {seed}");
                assert_eq!(a.output.dyn_count, b.output.dyn_count, "seed {seed}");
                assert_eq!(a.trace.stats, b.trace.stats, "seed {seed}");
                assert_eq!(a.trace.reg_instances, b.trace.reg_instances, "seed {seed}");
                assert_eq!(a.trace.xmm_instances, b.trace.xmm_instances, "seed {seed}");
                assert_eq!(a.trace.reads, b.trace.reads, "seed {seed}");
                assert_eq!(a.trace.dyn_records, b.trace.dyn_records, "seed {seed}");
            }
            (Err(ta), Err(tb)) => assert_eq!(ta, tb, "seed {seed}"),
            (a, b) => panic!("seed {seed}: divergent outcomes {a:?} vs {b:?}"),
        }
    }
}
