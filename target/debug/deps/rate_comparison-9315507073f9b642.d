/root/repo/target/debug/deps/rate_comparison-9315507073f9b642.d: crates/bench/src/bin/rate_comparison.rs

/root/repo/target/debug/deps/rate_comparison-9315507073f9b642: crates/bench/src/bin/rate_comparison.rs

crates/bench/src/bin/rate_comparison.rs:
