//! Hand-rolled JSON: a dynamic [`Value`] tree, a writer and a
//! recursive-descent parser.
//!
//! The journal format must survive offline builds, so no `serde_json`;
//! this module is the complete round-trip implementation the tests use
//! to validate every journal record. Numbers are written with Rust's
//! shortest-round-trip float formatting, so `parse(write(v)) == v` for
//! every finite value.

use std::fmt;

/// A dynamically typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (positive integers parse as [`Value::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Numeric view across all three number variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialises to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        if v >= 0 {
            Value::U64(v as u64)
        } else {
            Value::I64(v)
        }
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Arr(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
        return;
    }
    let s = n.to_string();
    out.push_str(&s);
    // Keep the float/integer distinction visible in the output.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Writes a JSON string literal with escapes.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document.
///
/// # Errors
/// A human-readable description with the byte offset of the failure.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 scalar. Input arrives as &str, so
                    // sequences are well-formed; only the length varies.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::U64(0),
            Value::U64(u64::MAX),
            Value::I64(-42),
            Value::F64(0.5),
            Value::F64(-1.25e-3),
            Value::Str("hello \"world\"\n\t\\".to_string()),
        ] {
            assert_eq!(parse(&v.to_json()).unwrap(), v, "{}", v.to_json());
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 6.02214076e23, f64::MIN_POSITIVE, -0.0] {
            let v = Value::F64(f);
            match parse(&v.to_json()).unwrap() {
                Value::F64(g) => assert_eq!(g.to_bits(), f.to_bits(), "{f}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        assert_eq!(Value::F64(3.0).to_json(), "3.0");
        assert_eq!(parse("3.0").unwrap(), Value::F64(3.0));
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Obj(vec![
            ("kind".to_string(), Value::Str("iteration".to_string())),
            (
                "tops".to_string(),
                Value::Arr(vec![Value::F64(0.25), Value::F64(0.125)]),
            ),
            (
                "nested".to_string(),
                Value::Obj(vec![("n".to_string(), Value::U64(3))]),
            ),
            ("empty_arr".to_string(), Value::Arr(vec![])),
            ("empty_obj".to_string(), Value::Obj(vec![])),
        ]);
        let s = v.to_json();
        assert_eq!(parse(&s).unwrap(), v, "{s}");
    }

    #[test]
    fn object_access_helpers() {
        let v = parse(r#"{"a": 1, "b": "x", "c": [1, 2.5], "d": -7}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-7.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "tru", "{\"a\" 1}", "1 2", "\"abc", "{]}"] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Value::Str("Aé😀".to_string())
        );
        // Control characters are escaped on the way out.
        let v = Value::Str("\u{1}".to_string());
        assert_eq!(v.to_json(), "\"\\u0001\"");
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Value::F64(f64::NAN).to_json(), "null");
        assert_eq!(Value::F64(f64::INFINITY).to_json(), "null");
    }
}
