/root/repo/target/debug/deps/lineage-523750e047e51ba4.d: crates/core/tests/lineage.rs

/root/repo/target/debug/deps/lineage-523750e047e51ba4: crates/core/tests/lineage.rs

crates/core/tests/lineage.rs:
