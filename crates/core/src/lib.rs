#![warn(missing_docs)]

//! # harpo-core — the Harpocrates loop
//!
//! The paper's primary contribution (§IV): an automated,
//! hardware-model-in-the-loop methodology that iteratively refines
//! constrained-random functional test programs toward maximum hardware
//! coverage of a chosen CPU structure — which the evaluation shows
//! translates into maximum fault detection capability.
//!
//! The three components of Fig. 7 map to:
//! * **Generator** — [`harpo_museqgen::Generator`]
//! * **Mutator** — [`harpo_museqgen::Mutator`]
//! * **Evaluator** — [`evaluator::Evaluator`] (OoO model + coverage)
//!
//! wired together by [`engine::Harpocrates`]. Per-structure parameters
//! from §VI-B live in [`presets`].
//!
//! ```no_run
//! use harpo_core::{presets, Evaluator, Harpocrates, Scale};
//! use harpo_coverage::TargetStructure;
//! use harpo_museqgen::Generator;
//! use harpo_uarch::OooCore;
//!
//! let structure = TargetStructure::IntMultiplier;
//! let (constraints, loop_cfg) = presets::preset(structure, Scale::Reduced);
//! let harpo = Harpocrates::new(
//!     Generator::new(constraints),
//!     Evaluator::new(OooCore::default(), structure),
//!     loop_cfg,
//! );
//! let report = harpo.run();
//! println!(
//!     "champion coverage {:.2}% after {} iterations",
//!     report.champion_coverage * 100.0,
//!     report.timing.iterations
//! );
//! ```

pub mod engine;
pub mod evaluator;
pub mod memo;
pub mod presets;

pub use engine::{Harpocrates, LoopConfig, LoopTiming, OperatorEfficacy, RunReport, Sample};
pub use evaluator::{Evaluation, Evaluator, RoundStats};
pub use memo::{fingerprint, Fnv128};
pub use presets::{preset, Scale};
