//! Live campaign telemetry: streaming `progress`/`heartbeat` records,
//! the stall watchdog, and the wall-clock budget with a resumable
//! cursor (journal schema v4).
//!
//! A fault-injection campaign is the pipeline's dominant cost, and
//! until now it was a black box between start and exit. This module
//! makes a running campaign observable: workers stamp cheap atomic
//! slots as they claim and finish fault units, and a monitor thread
//! folds those slots into journal records on a configurable cadence —
//! `progress` (done/total, per-outcome tallies, replay rate, EWMA ETA),
//! one `heartbeat` per worker (last unit started, replay instructions
//! since the previous beat, RSS), a `stall` when a worker goes silent
//! for [`StreamSettings::stall_beats`] cadences, and a `cursor` when
//! the wall-clock budget stops the campaign at a unit boundary.
//!
//! These records are deliberately the shard-health protocol for the
//! ROADMAP's "Harpocrates-as-a-service": a campaign server watching a
//! shard's journal needs exactly progress, liveness, stall and
//! resume-cursor signals, nothing more.
//!
//! Everything here is off by default and allocation-free when off: with
//! `cadence_ms == 0` (or no telemetry sink) no stream is constructed
//! and the worker hot path pays a single `Option` branch per unit.

use crate::outcome::CampaignResult;
use harpo_telemetry::{rss_bytes, EwmaRate, Record, Telemetry, Value};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Streaming-telemetry knobs, carried by
/// [`CampaignConfig`](crate::CampaignConfig). All off by default; serde
/// defaults keep configs serialised before streaming existed valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamSettings {
    /// Monitor cadence in milliseconds between `progress`/`heartbeat`
    /// emissions; `0` disables streaming entirely.
    #[serde(default)]
    pub cadence_ms: u64,
    /// Cadences of worker silence before the watchdog journals a
    /// `stall` record naming the (structure, program, fault) unit.
    #[serde(default = "default_stall_beats")]
    pub stall_beats: u64,
    /// Wall-clock budget in milliseconds; `0` means unlimited. On
    /// expiry workers stop at the next unit boundary and the monitor
    /// journals a resumable `cursor` record.
    #[serde(default)]
    pub wall_budget_ms: u64,
}

fn default_stall_beats() -> u64 {
    3
}

impl Default for StreamSettings {
    fn default() -> Self {
        StreamSettings {
            cadence_ms: 0,
            stall_beats: default_stall_beats(),
            wall_budget_ms: 0,
        }
    }
}

impl StreamSettings {
    /// Whether these settings ask for a live stream at all.
    pub fn enabled(&self) -> bool {
        self.cadence_ms > 0
    }
}

/// One worker's liveness slot. Workers write with relaxed atomics (the
/// monitor only needs eventually-consistent snapshots); nothing here
/// allocates after construction.
#[derive(Debug, Default)]
struct WorkerSlot {
    /// Milliseconds since stream epoch of the last `begin_unit`, +1 so
    /// that 0 means "never started a unit".
    touched_ms: AtomicU64,
    /// Fault index of the last unit started.
    last_unit: AtomicU64,
    /// Units completed by this worker.
    units: AtomicU64,
    /// Next strided fault index this worker would grade (the resumable
    /// cursor component).
    next: AtomicU64,
    /// The worker exhausted its strided range (watchdog must not flag
    /// a finished worker as stalled).
    finished: AtomicBool,
    // Outcome tallies, mirrored from the worker's local CampaignResult
    // after every unit.
    sdc: AtomicU64,
    crash: AtomicU64,
    masked: AtomicU64,
    corrected: AtomicU64,
    replays: AtomicU64,
    replay_insts: AtomicU64,
    replay_insts_skipped: AtomicU64,
}

/// Shared live state of one streaming campaign: per-worker slots the
/// graders stamp, and the stop flag the budget watchdog raises.
///
/// Constructed by the campaign driver when
/// [`StreamSettings::cadence_ms`] is non-zero and a telemetry sink is
/// attached; the companion [`StreamMonitor`] thread turns the slots
/// into journal records. The type is public because integration tests
/// (and, later, a campaign server's shard host) drive it directly.
#[derive(Debug)]
pub struct CampaignStream {
    telemetry: Telemetry,
    settings: StreamSettings,
    structure: &'static str,
    program: String,
    total: u64,
    epoch: Instant,
    slots: Vec<WorkerSlot>,
    stop: AtomicBool,
}

impl CampaignStream {
    /// A stream over `total` fault units graded by `workers` strided
    /// workers.
    pub fn new(
        telemetry: Telemetry,
        settings: StreamSettings,
        structure: &'static str,
        program: &str,
        total: usize,
        workers: usize,
    ) -> Arc<CampaignStream> {
        Arc::new(CampaignStream {
            telemetry,
            settings,
            structure,
            program: program.to_string(),
            total: total as u64,
            epoch: Instant::now(),
            slots: (0..workers.max(1)).map(|_| WorkerSlot::default()).collect(),
            stop: AtomicBool::new(false),
        })
    }

    /// Milliseconds since the stream epoch.
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Worker `worker` is starting fault unit `unit`. Two relaxed
    /// stores; call before grading.
    pub fn begin_unit(&self, worker: usize, unit: usize) {
        let slot = &self.slots[worker];
        slot.last_unit.store(unit as u64, Relaxed);
        slot.touched_ms.store(self.now_ms() + 1, Relaxed);
    }

    /// Worker `worker` finished a unit; `local` is its running tally
    /// (current values are mirrored, so this is idempotent and cheap).
    pub fn finish_unit(&self, worker: usize, local: &CampaignResult) {
        let slot = &self.slots[worker];
        slot.units.store(local.injected, Relaxed);
        slot.sdc.store(local.sdc, Relaxed);
        slot.crash.store(local.crash, Relaxed);
        slot.masked.store(local.masked, Relaxed);
        slot.corrected.store(local.corrected, Relaxed);
        slot.replays.store(local.replays, Relaxed);
        slot.replay_insts.store(local.replay_insts, Relaxed);
        slot.replay_insts_skipped
            .store(local.replay_insts_skipped, Relaxed);
    }

    /// Worker `worker` is done (or budget-stopped): `next` is the first
    /// strided index it did *not* grade, `exhausted` whether its range
    /// ran out naturally.
    pub fn finish_worker(&self, worker: usize, next: usize, exhausted: bool) {
        let slot = &self.slots[worker];
        slot.next.store(next as u64, Relaxed);
        slot.finished.store(true, Relaxed);
        let _ = exhausted;
    }

    /// Whether the wall-clock budget has expired; workers check at unit
    /// boundaries and stop gracefully.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Relaxed)
    }

    /// Spawns the monitor thread. Call [`StreamMonitor::finish`] after
    /// the workers join: it triggers one final tick (so the journal
    /// always ends with a closing `progress` record, and a `cursor`
    /// when the budget stopped the campaign early) and joins the
    /// thread.
    pub fn monitor(self: &Arc<Self>) -> StreamMonitor {
        let (tx, rx) = mpsc::channel::<()>();
        let stream = Arc::clone(self);
        let handle = std::thread::spawn(move || {
            let cadence = Duration::from_millis(stream.settings.cadence_ms.max(1));
            let mut state = MonitorState::new(stream.slots.len());
            loop {
                // A send or a dropped sender both mean "campaign over":
                // run the final tick and exit.
                let finished = !matches!(rx.recv_timeout(cadence), Err(RecvTimeoutError::Timeout));
                stream.tick(finished, &mut state);
                if finished {
                    break;
                }
            }
        });
        StreamMonitor { tx, handle }
    }

    /// One monitor tick: aggregate the slots, emit `progress` and
    /// per-worker `heartbeat` records, run the stall watchdog and the
    /// budget check. `finished` marks the closing tick.
    fn tick(&self, finished: bool, state: &mut MonitorState) {
        let elapsed_ns = self.epoch.elapsed().as_nanos() as u64;
        let now_ms = elapsed_ns / 1_000_000;

        let mut done = 0u64;
        let mut sdc = 0u64;
        let mut crash = 0u64;
        let mut masked = 0u64;
        let mut corrected = 0u64;
        let mut replays = 0u64;
        let mut replay_insts = 0u64;
        let mut replay_insts_skipped = 0u64;
        for slot in &self.slots {
            done += slot.units.load(Relaxed);
            sdc += slot.sdc.load(Relaxed);
            crash += slot.crash.load(Relaxed);
            masked += slot.masked.load(Relaxed);
            corrected += slot.corrected.load(Relaxed);
            replays += slot.replays.load(Relaxed);
            replay_insts += slot.replay_insts.load(Relaxed);
            replay_insts_skipped += slot.replay_insts_skipped.load(Relaxed);
        }

        state
            .rate
            .observe(done - state.last_done, elapsed_ns - state.last_tick_ns);
        state.last_done = done;
        state.last_tick_ns = elapsed_ns;
        let remaining = self.total.saturating_sub(done);

        self.telemetry.emit(|| {
            let mut r = Record::new("progress")
                .field("source", "campaign")
                .field("structure", self.structure)
                .field("program", self.program.as_str())
                .field("done", done)
                .field("total", self.total)
                .field("sdc", sdc)
                .field("crash", crash)
                .field("masked", masked)
                .field("corrected", corrected)
                .field("replays", replays)
                .field("replay_insts", replay_insts)
                .field("replay_insts_skipped", replay_insts_skipped)
                .field("elapsed_ns", elapsed_ns);
            if let Some(unit_ns) = state.rate.unit_ns() {
                r = r.field("units_per_sec", 1e9 / unit_ns as f64);
            }
            if let Some(eta_ns) = state.rate.eta_ns(remaining) {
                r = r.field("eta_ns", eta_ns);
            }
            r
        });

        let rss = rss_bytes();
        let stall_after_ms = self.settings.stall_beats.max(1) * self.settings.cadence_ms.max(1);
        for (w, slot) in self.slots.iter().enumerate() {
            let touched = slot.touched_ms.load(Relaxed);
            if touched == 0 {
                continue; // never started a unit; nothing to report yet
            }
            let age_ms = now_ms.saturating_sub(touched - 1);
            let insts = slot.replay_insts.load(Relaxed);
            let delta = insts - state.last_insts[w];
            state.last_insts[w] = insts;
            let last_unit = slot.last_unit.load(Relaxed);
            let units = slot.units.load(Relaxed);
            self.telemetry.emit(|| {
                Record::new("heartbeat")
                    .field("source", "campaign")
                    .field("worker", w as u64)
                    .field("last_unit", last_unit)
                    .field("units", units)
                    .field("replay_insts_delta", delta)
                    .field("age_ms", age_ms)
                    .field("rss_bytes", rss)
            });

            // Stall watchdog: a worker that started a unit, has not
            // finished its range, and has been silent for N cadences.
            // One record per stall episode; a resumed beat re-arms it.
            let stalled = !finished && !slot.finished.load(Relaxed) && age_ms > stall_after_ms;
            if stalled && !state.stalled[w] {
                state.stalled[w] = true;
                self.telemetry.emit(|| {
                    Record::new("stall")
                        .field("source", "campaign")
                        .field("worker", w as u64)
                        .field("structure", self.structure)
                        .field("program", self.program.as_str())
                        .field("fault", last_unit)
                        .field("silent_ms", age_ms)
                });
            } else if !stalled {
                state.stalled[w] = false;
            }
        }

        if self.settings.wall_budget_ms > 0 && now_ms >= self.settings.wall_budget_ms {
            self.stop.store(true, Relaxed);
        }

        if finished {
            if self.stop.load(Relaxed) && done < self.total {
                // Budget stop: journal the resumable cursor. `next`
                // holds each worker's first ungraded strided index, so
                // a resuming host with the same stride restarts exactly
                // where this run stopped.
                self.telemetry.emit(|| {
                    Record::new("cursor")
                        .field("source", "campaign")
                        .field("structure", self.structure)
                        .field("program", self.program.as_str())
                        .field("total", self.total)
                        .field("completed", done)
                        .field("stride", self.slots.len() as u64)
                        .field(
                            "next",
                            Value::Arr(
                                self.slots
                                    .iter()
                                    .map(|s| Value::U64(s.next.load(Relaxed)))
                                    .collect(),
                            ),
                        )
                });
            }
            self.telemetry.flush();
        }
    }
}

/// Monitor-thread bookkeeping between ticks.
struct MonitorState {
    rate: EwmaRate,
    last_done: u64,
    last_tick_ns: u64,
    last_insts: Vec<u64>,
    stalled: Vec<bool>,
}

impl MonitorState {
    fn new(workers: usize) -> MonitorState {
        MonitorState {
            rate: EwmaRate::default(),
            last_done: 0,
            last_tick_ns: 0,
            last_insts: vec![0; workers],
            stalled: vec![false; workers],
        }
    }
}

/// Handle to the running monitor thread; see [`CampaignStream::monitor`].
#[derive(Debug)]
pub struct StreamMonitor {
    tx: Sender<()>,
    handle: JoinHandle<()>,
}

impl StreamMonitor {
    /// Signals the closing tick and joins the monitor.
    pub fn finish(self) {
        let _ = self.tx.send(());
        let _ = self.handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_telemetry::MemorySink;

    fn mem_stream(
        settings: StreamSettings,
        total: usize,
        workers: usize,
    ) -> (Arc<MemorySink>, Arc<CampaignStream>) {
        let sink = Arc::new(MemorySink::new());
        let stream = CampaignStream::new(
            Telemetry::to(sink.clone()),
            settings,
            "irf",
            "prog-under-test",
            total,
            workers,
        );
        (sink, stream)
    }

    fn tally_of(units: u64) -> CampaignResult {
        let mut r = CampaignResult::default();
        for _ in 0..units {
            r.record(crate::FaultOutcome::Masked, true);
        }
        r
    }

    #[test]
    fn progress_and_heartbeats_flow_on_cadence() {
        let settings = StreamSettings {
            cadence_ms: 5,
            ..StreamSettings::default()
        };
        let (sink, stream) = mem_stream(settings, 8, 2);
        let monitor = stream.monitor();
        for unit in 0..4 {
            stream.begin_unit(0, unit);
            stream.finish_unit(0, &tally_of(unit as u64 + 1));
            std::thread::sleep(Duration::from_millis(6));
        }
        stream.finish_worker(0, 8, true);
        monitor.finish();

        let progress = sink.records_of("progress");
        assert!(progress.len() >= 2, "at least one cadence + closing tick");
        let last = progress.last().unwrap();
        assert_eq!(last.get("done").unwrap().as_u64(), Some(4));
        assert_eq!(last.get("total").unwrap().as_u64(), Some(8));
        assert_eq!(last.get("structure").unwrap().as_str(), Some("irf"));
        assert_eq!(
            last.get("program").unwrap().as_str(),
            Some("prog-under-test")
        );
        assert!(last.get("masked").unwrap().as_u64().unwrap() == 4);
        // After two observation windows the EWMA yields a rate and ETA.
        assert!(last.get("units_per_sec").is_some());
        assert!(last.get("eta_ns").is_some());

        let beats = sink.records_of("heartbeat");
        assert!(!beats.is_empty());
        // Worker 1 never started a unit → no heartbeat rows for it.
        assert!(beats
            .iter()
            .all(|b| b.get("worker").unwrap().as_u64() == Some(0)));
        assert!(sink.records_of("stall").is_empty());
    }

    #[test]
    fn watchdog_journals_the_stalled_unit() {
        // Worker 1 beats once at fault 7 then goes silent; worker 0
        // keeps beating. The watchdog must name worker 1's exact unit.
        let settings = StreamSettings {
            cadence_ms: 5,
            stall_beats: 2,
            ..StreamSettings::default()
        };
        let (sink, stream) = mem_stream(settings, 64, 2);
        let monitor = stream.monitor();
        stream.begin_unit(1, 7);
        for i in 0..12 {
            stream.begin_unit(0, i);
            stream.finish_unit(0, &tally_of(i as u64 + 1));
            std::thread::sleep(Duration::from_millis(5));
        }
        monitor.finish();

        let stalls = sink.records_of("stall");
        assert!(!stalls.is_empty(), "watchdog never fired");
        let s = &stalls[0];
        assert_eq!(s.get("worker").unwrap().as_u64(), Some(1));
        assert_eq!(s.get("fault").unwrap().as_u64(), Some(7));
        assert_eq!(s.get("structure").unwrap().as_str(), Some("irf"));
        assert_eq!(s.get("program").unwrap().as_str(), Some("prog-under-test"));
        assert!(s.get("silent_ms").unwrap().as_u64().unwrap() >= 10);
        // One record per episode, not one per cadence.
        assert_eq!(stalls.len(), 1, "stall must not re-fire every tick");
        // Worker 0 was never flagged.
        assert!(stalls
            .iter()
            .all(|r| r.get("worker").unwrap().as_u64() == Some(1)));
    }

    #[test]
    fn budget_stops_and_journals_a_cursor() {
        let settings = StreamSettings {
            cadence_ms: 2,
            wall_budget_ms: 8,
            ..StreamSettings::default()
        };
        let (sink, stream) = mem_stream(settings, 100, 2);
        let monitor = stream.monitor();
        let mut graded = [0usize, 1];
        let mut tallies = [CampaignResult::default(), CampaignResult::default()];
        while !stream.should_stop() {
            for w in 0..2 {
                stream.begin_unit(w, graded[w]);
                tallies[w].record(crate::FaultOutcome::Masked, true);
                stream.finish_unit(w, &tallies[w]);
                graded[w] += 2;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for (w, &next) in graded.iter().enumerate() {
            stream.finish_worker(w, next, false);
        }
        monitor.finish();

        let cursors = sink.records_of("cursor");
        assert_eq!(cursors.len(), 1, "budget stop journals one cursor");
        let c = &cursors[0];
        assert_eq!(c.get("total").unwrap().as_u64(), Some(100));
        assert_eq!(c.get("stride").unwrap().as_u64(), Some(2));
        let completed = c.get("completed").unwrap().as_u64().unwrap();
        assert!(completed > 0 && completed < 100, "stopped mid-campaign");
        let next = c.get("next").unwrap().as_arr().unwrap();
        assert_eq!(next.len(), 2);
        // Worker w's cursor is its first ungraded strided index.
        for (w, v) in next.iter().enumerate() {
            let n = v.as_u64().unwrap() as usize;
            assert_eq!(n % 2, w, "cursor preserves the stride lane");
            assert_eq!(n, graded[w]);
        }
    }

    #[test]
    fn disabled_settings_stream_nothing() {
        assert!(!StreamSettings::default().enabled());
        assert!(StreamSettings {
            cadence_ms: 10,
            ..StreamSettings::default()
        }
        .enabled());
    }
}
