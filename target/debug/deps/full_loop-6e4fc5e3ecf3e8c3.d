/root/repo/target/debug/deps/full_loop-6e4fc5e3ecf3e8c3.d: tests/full_loop.rs Cargo.toml

/root/repo/target/debug/deps/libfull_loop-6e4fc5e3ecf3e8c3.rmeta: tests/full_loop.rs Cargo.toml

tests/full_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
