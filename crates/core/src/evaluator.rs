//! The Evaluator: hardware-in-the-loop grading of candidate programs
//! (paper §IV-A, §V-C step 1).
//!
//! Each candidate is simulated on the out-of-order core model and scored
//! with the target structure's hardware-coverage objective. A program
//! that traps (possible only for hand-fed candidates; MuSeqGen output is
//! valid by construction) scores zero — it would be useless as a fleet
//! test.
//!
//! The evaluator is the pipeline's hottest layer, so it feeds the
//! telemetry registry directly: programs graded, trap count, per-thread
//! work batches, and the aggregate microarchitectural activity (cycles,
//! committed instructions, structural stalls) of every simulation.

use harpo_coverage::TargetStructure;
use harpo_isa::program::Program;
use harpo_isa::state::Signature;
use harpo_isa::trail::GoldenTrail;
use harpo_telemetry::{
    effective_threads, rss_bytes, Counter, Histogram, Metrics, Record, Telemetry,
};
use harpo_uarch::{ExecutionTrace, OooCore, SimContext};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Result of grading one program.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The fitness score (hardware coverage, 0 for trapping programs).
    pub coverage: f64,
    /// Golden output signature (None if the program trapped).
    pub signature: Option<Signature>,
    /// The execution trace (None if the program trapped).
    pub trace: Option<ExecutionTrace>,
}

/// Summary statistics of an evaluation round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Best coverage in the round.
    pub best: f64,
    /// Mean coverage of the round.
    pub mean: f64,
}

impl RoundStats {
    /// Computes the round summary of one evaluated population.
    pub fn from_scores(scores: &[f64]) -> RoundStats {
        if scores.is_empty() {
            return RoundStats::default();
        }
        let best = scores.iter().cloned().fold(f64::MIN, f64::max);
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        RoundStats { best, mean }
    }
}

/// The hardware-in-the-loop evaluator.
#[derive(Debug, Clone)]
pub struct Evaluator {
    core: OooCore,
    structure: TargetStructure,
    cap: u64,
    metrics: Metrics,
    programs: Counter,
    traps: Counter,
    thread_batch: Histogram,
    simulate_ns: Histogram,
    steals: Counter,
    uarch_cycles: Counter,
    uarch_insts: Counter,
    uarch_stalls: Counter,
    /// Pool of warm simulation contexts, checked out per worker thread so
    /// consecutive rounds keep their allocations (clones share the pool).
    contexts: Arc<Mutex<Vec<SimContext>>>,
    /// Live-telemetry journal for per-worker `heartbeat` records
    /// (schema v4). Off by default; see [`Evaluator::with_stream`].
    stream: Telemetry,
}

impl Evaluator {
    /// Creates an evaluator for a core model and target structure,
    /// reporting into a private metrics registry (see
    /// [`Evaluator::with_metrics`] to share one).
    pub fn new(core: OooCore, structure: TargetStructure) -> Evaluator {
        // Handles are resolved once here; the hot path is pure atomics.
        let metrics = Metrics::new();
        Evaluator {
            core,
            structure,
            cap: 50_000_000,
            programs: metrics.counter("evaluator.programs"),
            traps: metrics.counter("evaluator.traps"),
            thread_batch: metrics.histogram("evaluator.thread_batch"),
            simulate_ns: metrics.histogram("evaluator.simulate_ns"),
            steals: metrics.counter("evaluator.steals"),
            uarch_cycles: metrics.counter("uarch.cycles"),
            uarch_insts: metrics.counter("uarch.insts"),
            uarch_stalls: metrics.counter("uarch.dispatch_stalls"),
            metrics,
            contexts: Arc::new(Mutex::new(Vec::new())),
            stream: Telemetry::off(),
        }
    }

    /// Attaches a live-telemetry journal: each evaluation worker emits
    /// one `heartbeat` record (worker index, programs graded, last
    /// claimed index, RSS) at the end of every population batch. With
    /// the default ([`Telemetry::off`]) the hot path emits nothing and
    /// allocates nothing.
    pub fn with_stream(mut self, stream: Telemetry) -> Evaluator {
        self.stream = stream;
        self
    }

    /// Rebinds the evaluator to a shared metrics registry.
    pub fn with_metrics(mut self, metrics: Metrics) -> Evaluator {
        self.programs = metrics.counter("evaluator.programs");
        self.traps = metrics.counter("evaluator.traps");
        self.thread_batch = metrics.histogram("evaluator.thread_batch");
        self.simulate_ns = metrics.histogram("evaluator.simulate_ns");
        self.steals = metrics.counter("evaluator.steals");
        self.uarch_cycles = metrics.counter("uarch.cycles");
        self.uarch_insts = metrics.counter("uarch.insts");
        self.uarch_stalls = metrics.counter("uarch.dispatch_stalls");
        self.metrics = metrics;
        self
    }

    /// Checks a warm context out of the pool (or a fresh one).
    fn checkout(&self) -> SimContext {
        self.contexts
            .lock()
            .expect("context pool")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a context to the pool for the next round.
    fn checkin(&self, ctx: SimContext) {
        self.contexts.lock().expect("context pool").push(ctx);
    }

    /// The shared metrics registry this evaluator reports into.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The target structure.
    pub fn structure(&self) -> TargetStructure {
        self.structure
    }

    /// The core model.
    pub fn core(&self) -> &OooCore {
        &self.core
    }

    /// Grades one program. The simulation runs in a pooled context, but
    /// the trace is handed to the caller, so the trace buffers are fresh
    /// allocations; batch scoring goes through
    /// [`Evaluator::evaluate_population`], which never exports traces.
    pub fn evaluate(&self, prog: &Program) -> Evaluation {
        self.programs.inc();
        let mut ctx = self.checkout();
        let eval = if self.core.simulate_into(prog, self.cap, &mut ctx).is_err() {
            self.traps.inc();
            Evaluation {
                coverage: 0.0,
                signature: None,
                trace: None,
            }
        } else {
            let sim = ctx.take_result().expect("simulation succeeded");
            let stats = &sim.trace.stats;
            self.uarch_cycles.add(stats.cycles);
            self.uarch_insts.add(stats.insts);
            self.uarch_stalls
                .add(stats.rob_stalls + stats.iq_stalls + stats.prf_stalls);
            Evaluation {
                coverage: self.structure.coverage(&sim.trace, self.core.config()),
                signature: Some(sim.output.signature),
                trace: Some(sim.trace),
            }
        };
        self.checkin(ctx);
        eval
    }

    /// Scores one program inside a reused context: the trace is only
    /// borrowed for the coverage computation and its buffers stay in the
    /// context for the next simulation.
    fn score_with(&self, prog: &Program, ctx: &mut SimContext) -> f64 {
        self.programs.inc();
        // Two clock reads per multi-microsecond simulation: well under
        // the journal's <2% observability-overhead budget, and it buys
        // the per-program latency distribution (p50/p90/p99) in the
        // summary record.
        let t = std::time::Instant::now();
        let score = match self.core.simulate_into(prog, self.cap, ctx) {
            Err(_) => {
                self.traps.inc();
                0.0
            }
            Ok(sim) => {
                let stats = &sim.trace.stats;
                self.uarch_cycles.add(stats.cycles);
                self.uarch_insts.add(stats.insts);
                self.uarch_stalls
                    .add(stats.rob_stalls + stats.iq_stalls + stats.prf_stalls);
                self.structure.coverage(&sim.trace, self.core.config())
            }
        };
        self.simulate_ns.observe(t.elapsed().as_nanos() as u64);
        score
    }

    /// Records the golden checkpoint trail of a champion program so a
    /// fault-injection campaign can seek replays to the fault and
    /// early-exit on reconvergence instead of re-executing the golden
    /// prefix. The trail is built **once per program** here and shared
    /// across every structure campaign that grades it. `None` when
    /// checkpointing is disabled (`interval == 0`) or the program traps
    /// (trap-free is a precondition for campaigns anyway).
    pub fn golden_trail(&self, prog: &Program, interval: u64) -> Option<GoldenTrail> {
        (interval > 0)
            .then(|| GoldenTrail::record(prog, self.cap, interval).ok())
            .flatten()
    }

    /// Grades a whole population in parallel, returning coverages in
    /// input order. This is the paper's "programs are simulated in
    /// parallel in gem5" step, scaled to the host's cores.
    pub fn evaluate_population(&self, progs: &[Program], threads: usize) -> Vec<f64> {
        let refs: Vec<&Program> = progs.iter().collect();
        self.evaluate_population_refs(&refs, threads)
    }

    /// [`Evaluator::evaluate_population`] over borrowed programs (the
    /// engine's memo cache grades only the cache-miss subset, which is a
    /// gather of references).
    ///
    /// Work distribution is an atomic-cursor work-stealing loop: workers
    /// claim the next un-graded index as they finish the previous one, so
    /// a thread stuck on one expensive simulation cannot idle its peers
    /// the way static chunking can. Scores are keyed by index and merged
    /// after the join, so the result is order-deterministic regardless of
    /// which worker graded what; claims beyond a worker's fair share are
    /// reported as `evaluator.steals`.
    pub fn evaluate_population_refs(&self, progs: &[&Program], threads: usize) -> Vec<f64> {
        if progs.is_empty() {
            return Vec::new();
        }
        let threads = effective_threads(threads).min(progs.len());
        let fair_share = progs.len().div_ceil(threads) as u64;
        let cursor = AtomicUsize::new(0);
        let mut out = vec![0.0; progs.len()];
        std::thread::scope(|s| {
            let cursor = &cursor;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let this = &*self;
                    s.spawn(move || {
                        let mut ctx = this.checkout();
                        let mut local: Vec<(usize, f64)> = Vec::new();
                        let mut last_claimed = 0usize;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= progs.len() {
                                break;
                            }
                            last_claimed = i;
                            local.push((i, this.score_with(progs[i], &mut ctx)));
                        }
                        this.checkin(ctx);
                        this.thread_batch.observe(local.len() as u64);
                        if local.len() as u64 > fair_share {
                            this.steals.add(local.len() as u64 - fair_share);
                        }
                        this.stream.emit(|| {
                            Record::new("heartbeat")
                                .field("source", "evaluator")
                                .field("worker", t as u64)
                                .field("units", local.len() as u64)
                                .field("last_unit", last_claimed as u64)
                                .field("rss_bytes", rss_bytes())
                        });
                        local
                    })
                })
                .collect();
            for h in handles {
                for (i, score) in h.join().expect("evaluator worker") {
                    out[i] = score;
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_coverage::TargetStructure;
    use harpo_isa::asm::Asm;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;
    use harpo_uarch::OooCore;

    #[test]
    fn trapping_program_scores_zero() {
        let mut a = Asm::new("trap");
        a.mov_ri(B64, Rsi, 1); // bad base
        a.load(B64, Rax, Rsi, 0);
        a.halt();
        let p = a.finish().unwrap();
        let ev = Evaluator::new(OooCore::default(), TargetStructure::Irf);
        let e = ev.evaluate(&p);
        assert_eq!(e.coverage, 0.0);
        assert!(e.trace.is_none());
    }

    #[test]
    fn population_scores_match_single_scores() {
        let ev = Evaluator::new(OooCore::default(), TargetStructure::IntAdder);
        let gen = harpo_museqgen::Generator::new(harpo_museqgen::GenConstraints {
            n_insts: 300,
            ..Default::default()
        });
        let pop: Vec<_> = (0..6).map(|s| gen.generate(s)).collect();
        let batch = ev.evaluate_population(&pop, 3);
        for (i, p) in pop.iter().enumerate() {
            assert_eq!(batch[i], ev.evaluate(p).coverage, "program {i}");
        }
    }

    #[test]
    fn metrics_count_work_and_traps() {
        let metrics = Metrics::new();
        let ev =
            Evaluator::new(OooCore::default(), TargetStructure::Irf).with_metrics(metrics.clone());
        let gen = harpo_museqgen::Generator::new(harpo_museqgen::GenConstraints {
            n_insts: 100,
            ..Default::default()
        });
        let pop: Vec<_> = (0..4).map(|s| gen.generate(s)).collect();
        ev.evaluate_population(&pop, 2);
        assert_eq!(metrics.counter("evaluator.programs").get(), 4);
        assert_eq!(metrics.counter("evaluator.traps").get(), 0);
        assert!(metrics.counter("uarch.cycles").get() > 0);
        assert!(metrics.counter("uarch.insts").get() >= 4 * 100);
        // Two worker batches of two programs each.
        let batches = metrics.histogram("evaluator.thread_batch").snapshot();
        assert_eq!(batches.count, 2);
        assert_eq!(batches.sum, 4);

        // A trapping program is tallied.
        let mut a = Asm::new("trap");
        a.mov_ri(B64, Rsi, 1);
        a.load(B64, Rax, Rsi, 0);
        a.halt();
        ev.evaluate(&a.finish().unwrap());
        assert_eq!(metrics.counter("evaluator.traps").get(), 1);
        assert_eq!(metrics.counter("evaluator.programs").get(), 5);
    }

    #[test]
    fn empty_population_returns_empty() {
        // Regression: static chunking panicked on `chunks_mut(0)` when the
        // population was empty.
        let ev = Evaluator::new(OooCore::default(), TargetStructure::Irf);
        assert!(ev.evaluate_population(&[], 4).is_empty());
        assert!(ev.evaluate_population_refs(&[], 0).is_empty());
    }

    #[test]
    fn population_refs_match_owned_population() {
        let ev = Evaluator::new(OooCore::default(), TargetStructure::Irf);
        let gen = harpo_museqgen::Generator::new(harpo_museqgen::GenConstraints {
            n_insts: 100,
            ..Default::default()
        });
        let pop: Vec<_> = (0..5).map(|s| gen.generate(s)).collect();
        let refs: Vec<&harpo_isa::program::Program> = pop.iter().collect();
        assert_eq!(
            ev.evaluate_population(&pop, 2),
            ev.evaluate_population_refs(&refs, 2)
        );
    }

    #[test]
    fn golden_trail_once_per_program() {
        let ev = Evaluator::new(OooCore::default(), TargetStructure::Irf);
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rax, 5);
        for _ in 0..80 {
            a.add_ri(B64, Rax, 1);
        }
        a.halt();
        let p = a.finish().unwrap();
        let trail = ev.golden_trail(&p, 16).expect("trap-free program");
        assert_eq!(trail.interval(), 16);
        assert!(trail.checkpoints().len() > 2);
        assert!(ev.golden_trail(&p, 0).is_none(), "interval 0 disables");
    }

    #[test]
    fn round_stats_from_scores() {
        let s = RoundStats::from_scores(&[0.1, 0.4, 0.25]);
        assert_eq!(s.best, 0.4);
        assert!((s.mean - 0.25).abs() < 1e-12);
        assert_eq!(RoundStats::from_scores(&[]), RoundStats::default());
    }
}
