/root/repo/target/debug/deps/harpo_bench-e7a241f28b514d58.d: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/debug/deps/libharpo_bench-e7a241f28b514d58.rlib: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/debug/deps/libharpo_bench-e7a241f28b514d58.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
