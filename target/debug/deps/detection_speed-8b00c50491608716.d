/root/repo/target/debug/deps/detection_speed-8b00c50491608716.d: crates/bench/src/bin/detection_speed.rs

/root/repo/target/debug/deps/detection_speed-8b00c50491608716: crates/bench/src/bin/detection_speed.rs

crates/bench/src/bin/detection_speed.rs:
