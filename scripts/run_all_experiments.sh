#!/usr/bin/env bash
# Regenerates every table and figure of the paper at the given scale
# (default: reduced). Usage: scripts/run_all_experiments.sh [paper|reduced]
#
# Each binary writes its CSV plus a <name>.manifest.json run manifest
# (config, seed, wall time, counter snapshot) into results/; a missing
# manifest or a non-zero exit fails the whole script with the binary
# named.
set -uo pipefail
SCALE="${1:-reduced}"
cd "$(dirname "$0")/.."
mkdir -p results/logs

BINS=(
  fig01_dppm
  fig04_arrays
  fig05_intfu
  fig06_fpfu
  table1_loopstep
  rate_comparison
  fig10_convergence
  fig11_detection
  detection_speed
  campaign_speed
  ablation_mutation
  ablation_l1d
  fault_model_study
  seventh_structure
)

cargo build --release -p harpo-bench || {
  echo "FATAL: harpo-bench failed to build" >&2
  exit 1
}

failed=()
for bin in "${BINS[@]}"; do
  echo "==== $bin (scale: $SCALE) ===="
  if ! cargo run --release -p harpo-bench --bin "$bin" -- --scale "$SCALE" \
    | tee "results/logs/$bin.txt"; then
    echo "ERROR: $bin exited non-zero (log: results/logs/$bin.txt)" >&2
    failed+=("$bin")
    continue
  fi
  if [[ ! -s "results/$bin.manifest.json" ]]; then
    echo "ERROR: $bin wrote no results/$bin.manifest.json" >&2
    failed+=("$bin")
  fi
done

if ((${#failed[@]})); then
  echo "FAILED: ${failed[*]}" >&2
  exit 1
fi

# Render the offline analysis report from every run journal and bench
# snapshot the experiments produced.
shopt -s nullglob
report_inputs=(results/*.journal.jsonl results/BENCH_*.json)
shopt -u nullglob
if ((${#report_inputs[@]})); then
  cargo build --release -p harpo-cli --bin harpo || {
    echo "FATAL: harpo-cli failed to build" >&2
    exit 1
  }
  ./target/release/harpo report "${report_inputs[@]}" --out results/REPORT.md \
    || { echo "ERROR: harpo report failed" >&2; exit 1; }
  # Append this run's journals and snapshots to the cross-run archive
  # and re-render the trend tables, so detection rates and speedups are
  # comparable across invocations of this script.
  ./target/release/harpo archive "${report_inputs[@]}" \
    --id "run-$(date +%Y%m%d-%H%M%S)" --index results/history.jsonl \
    || { echo "ERROR: harpo archive failed" >&2; exit 1; }
  ./target/release/harpo history --index results/history.jsonl --out results/HISTORY.md \
    || { echo "ERROR: harpo history failed" >&2; exit 1; }
fi
echo "All ${#BINS[@]} experiments complete; CSVs + manifests in results/, logs in results/logs/, report at results/REPORT.md, run archive at results/history.jsonl."
