//! Shared helpers for hand-written baseline kernels.

use harpo_isa::asm::Asm;
use harpo_isa::form::Mnemonic;
use harpo_isa::reg::Gpr;
use harpo_isa::reg::Width::*;

/// Serialises seeded 64-bit values into a little-endian byte patch.
pub fn u64_patch(seed: u64, n: usize) -> Vec<u8> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Serialises seeded bytes.
pub fn byte_patch(seed: u64, n: usize) -> Vec<u8> {
    u64_patch(seed, n.div_ceil(8)).into_iter().take(n).collect()
}

/// Serialises seeded normal `f32` values in roughly `[1, 2^scale)`.
pub fn f32_patch(seed: u64, n: usize, scale: u32) -> Vec<u8> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(n * 4);
    for _ in 0..n {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let mant = (s as u32) & 0x007F_FFFF;
        let exp = 127 + (s >> 32) as u32 % scale.max(1);
        let v = (exp << 23) | mant;
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Emits a FNV-style fold of `count` 64-bit words at `[base + off]` into
/// `acc`, then stores the result at `[base + out_off]` — the standard
/// "propagate everything to the output" epilogue of checking tests.
pub fn fold_words(a: &mut Asm, base: Gpr, off: i16, count: u16, acc: Gpr, tmp: Gpr, out_off: i16) {
    a.mov_ri(B64, acc, 0x1505);
    for k in 0..count {
        a.load(B64, tmp, base, off + (k as i16) * 8);
        a.op_rr(Mnemonic::Xor, B64, acc, tmp);
        // acc = acc * 33 via shl+add keeps the fold multiplier-free.
        a.mov_rr(B64, tmp, acc);
        a.op_shift_i(Mnemonic::Shl, B64, tmp, 5);
        a.add_rr(B64, acc, tmp);
    }
    a.store(B64, base, out_off, acc);
}
