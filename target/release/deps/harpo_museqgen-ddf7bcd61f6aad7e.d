/root/repo/target/release/deps/harpo_museqgen-ddf7bcd61f6aad7e.d: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/release/deps/harpo_museqgen-ddf7bcd61f6aad7e: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

crates/museqgen/src/lib.rs:
crates/museqgen/src/constraints.rs:
crates/museqgen/src/generator.rs:
crates/museqgen/src/mutate.rs:
